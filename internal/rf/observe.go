package rf

import (
	"math"
	"math/rand"

	"tagbreathe/internal/units"
)

// Observation is the low-level data a commodity reader reports for one
// successful tag singulation (§IV-A of the paper): phase, RSSI, and
// Doppler shift, plus the underlying link state for diagnostics.
type Observation struct {
	// Phase is the backscatter phase in [0, 2π), per Eq. 1, after
	// noise and the reader's 4096-step quantization.
	Phase units.Radians
	// RSSI is the reverse-link received signal strength after the
	// reader's 0.5 dBm quantization.
	RSSI units.DBm
	// DopplerHz is the reader's Doppler estimate per Eq. 2, derived
	// from phase rotation across one packet — low resolution and noisy
	// at breathing speeds, as Fig. 3 shows.
	DopplerHz float64
	// Link is the noiseless link state that produced the observation.
	Link Link
}

// ObserverConfig tunes the observation model.
type ObserverConfig struct {
	// PhaseQuantizationSteps is the number of reported phase levels
	// over [0, 2π); the Impinj R420 reports 4096.
	PhaseQuantizationSteps int
	// RSSIQuantization is the RSSI reporting resolution in dB (0.5 for
	// the R420 — the "low resolution" limit §IV-A.1 calls out).
	RSSIQuantization float64
	// RSSINoiseStdDev is the per-read RSSI measurement noise in dB
	// before quantization.
	RSSINoiseStdDev float64
	// DopplerNoiseStdDev is the per-read Doppler noise in Hz. Eq. 2
	// divides a small phase rotation by a short packet duration, so
	// the estimate is inherently noisy.
	DopplerNoiseStdDev float64
	// MultipathRippleDB is the peak amplitude in dB of the standing-
	// wave RSSI ripple caused by indoor multipath. This ripple, not
	// free-space path-loss change, is what makes breathing visible in
	// RSSI at all (Fig. 2): a millimeter-scale range change moves the
	// tag through the standing-wave pattern.
	MultipathRippleDB float64
	// MultipathPhaseRippleRad couples the same standing wave into the
	// phase measurement, weakly.
	MultipathPhaseRippleRad float64
	// PiAmbiguity, when true, flips each reported phase by π with
	// probability one half, emulating readers that cannot resolve the
	// BPSK constellation orientation between inventory rounds. The
	// paper's prototype does not exhibit this; the flag exists to test
	// the pipeline's ambiguity mitigation.
	PiAmbiguity bool
}

// DefaultObserverConfig returns Impinj R420-like reporting behaviour.
func DefaultObserverConfig() ObserverConfig {
	return ObserverConfig{
		PhaseQuantizationSteps:  4096,
		RSSIQuantization:        0.5,
		RSSINoiseStdDev:         0.4,
		DopplerNoiseStdDev:      0.15,
		MultipathRippleDB:       1.8,
		MultipathPhaseRippleRad: 0.05,
	}
}

// Observer turns geometric truth (tag distance and radial velocity)
// into the noisy, quantized low-level data stream a commodity reader
// reports. It owns the hidden constants of Eq. 1: a phase offset per
// (antenna, channel) for reader circuits and cables, a per-tag offset
// for tag circuits, and per-(antenna, tag) multipath ripple geometry.
// All constants are drawn lazily from the seeded RNG and cached, so a
// static tag on a static channel always yields a consistent phase.
type Observer struct {
	budget *LinkBudget
	cfg    ObserverConfig
	rng    *rand.Rand

	channelOffsets map[antennaChannelKey]float64
	tagOffsets     map[uint64]float64
	ripples        map[antennaTagKey]rippleParams
}

type antennaChannelKey struct {
	antenna int
	channel int
}

type antennaTagKey struct {
	antenna int
	tag     uint64
}

// rippleParams describes one standing-wave pattern: spatial period in
// meters and phase offset at distance zero.
type rippleParams struct {
	period float64
	phase  float64
}

// NewObserver builds an observation model with the given link budget
// and reporting configuration. rng must not be nil; it seeds the hidden
// constants and drives per-read noise.
func NewObserver(budget *LinkBudget, cfg ObserverConfig, rng *rand.Rand) *Observer {
	if cfg.PhaseQuantizationSteps <= 0 {
		cfg.PhaseQuantizationSteps = 4096
	}
	return &Observer{
		budget:         budget,
		cfg:            cfg,
		rng:            rng,
		channelOffsets: make(map[antennaChannelKey]float64),
		tagOffsets:     make(map[uint64]float64),
		ripples:        make(map[antennaTagKey]rippleParams),
	}
}

// Budget returns the observer's link budget.
func (o *Observer) Budget() *LinkBudget {
	return o.budget
}

// channelOffset returns the constant c of Eq. 1 contributed by reader
// circuits for an (antenna, channel) pair, drawn once per pair.
func (o *Observer) channelOffset(antenna, channel int) float64 {
	k := antennaChannelKey{antenna, channel}
	if v, ok := o.channelOffsets[k]; ok {
		return v
	}
	v := o.rng.Float64() * 2 * math.Pi
	o.channelOffsets[k] = v
	return v
}

// tagOffset returns the per-tag circuit phase constant.
func (o *Observer) tagOffset(tag uint64) float64 {
	if v, ok := o.tagOffsets[tag]; ok {
		return v
	}
	v := o.rng.Float64() * 2 * math.Pi
	o.tagOffsets[tag] = v
	return v
}

// ripple returns the multipath standing-wave geometry for an
// (antenna, tag) pair. The spatial period is on the order of λ/2 — the
// scale of two-ray interference fringes indoors.
func (o *Observer) ripple(antenna int, tag uint64, f units.Hertz) rippleParams {
	k := antennaTagKey{antenna, tag}
	if v, ok := o.ripples[k]; ok {
		return v
	}
	lambda := float64(f.Wavelength())
	v := rippleParams{
		period: lambda * (0.35 + 0.3*o.rng.Float64()), // ~λ/3 .. λ/1.5
		phase:  o.rng.Float64() * 2 * math.Pi,
	}
	o.ripples[k] = v
	return v
}

// ReadRequest describes one singulation whose low-level data should be
// synthesized.
type ReadRequest struct {
	// TagID is a stable 64-bit identity for the physical tag (distinct
	// from its rewritable EPC), keying its hidden circuit constants.
	TagID uint64
	// Antenna is the reader antenna port performing the read (1-based,
	// as LLRP reports it).
	Antenna int
	// Channel is the channel index in the active plan.
	Channel int
	// Frequency is the channel center frequency.
	Frequency units.Hertz
	// Distance is the true antenna-to-tag range in meters.
	Distance float64
	// RadialVelocity is the rate of change of Distance in m/s
	// (positive = receding), used for the Doppler report.
	RadialVelocity float64
	// ForwardLoss is excess loss on the reader-to-tag power-up path
	// (tag detuning against the body, blockage).
	ForwardLoss units.DB
	// ReverseLoss is excess loss on the backscatter return path.
	ReverseLoss units.DB
}

// Observe synthesizes the reader's report for one read. It does not
// decide whether the read succeeds — the MAC layer does that using
// Link and ReadSuccessProbability — it only models measurement.
func (o *Observer) Observe(req ReadRequest) Observation {
	link := o.budget.Compute(req.Distance, req.Frequency, req.ForwardLoss, req.ReverseLoss)
	lambda := float64(req.Frequency.Wavelength())

	// Phase per Eq. 1: round-trip distance 2d plus circuit constants.
	truePhase := 2*math.Pi/lambda*2*req.Distance +
		o.channelOffset(req.Antenna, req.Channel) +
		o.tagOffset(req.TagID)

	rip := o.ripple(req.Antenna, req.TagID, req.Frequency)
	standingWave := math.Cos(2*math.Pi*req.Distance/rip.period + rip.phase)

	noisy := truePhase +
		o.budget.PhaseNoiseStdDev(link)*o.rng.NormFloat64() +
		o.cfg.MultipathPhaseRippleRad*standingWave
	if o.cfg.PiAmbiguity && o.rng.Intn(2) == 1 {
		noisy += math.Pi
	}
	phase := quantizePhase(units.WrapPhase(units.Radians(noisy)), o.cfg.PhaseQuantizationSteps)

	// RSSI: link power plus multipath ripple and measurement noise,
	// then the reader's coarse quantization.
	rssi := float64(link.BackscatterPower) +
		o.cfg.MultipathRippleDB*standingWave +
		o.cfg.RSSINoiseStdDev*o.rng.NormFloat64()
	if q := o.cfg.RSSIQuantization; q > 0 {
		rssi = math.Round(rssi/q) * q
	}

	// Doppler per Eq. 2: the phase rotation across one packet measures
	// radial velocity as f = 2v/λ, buried in estimation noise.
	doppler := -2*req.RadialVelocity/lambda +
		o.cfg.DopplerNoiseStdDev*o.rng.NormFloat64()

	return Observation{
		Phase:     phase,
		RSSI:      units.DBm(rssi),
		DopplerHz: doppler,
		Link:      link,
	}
}

// quantizePhase rounds a wrapped phase to the reader's reporting grid.
func quantizePhase(theta units.Radians, steps int) units.Radians {
	step := 2 * math.Pi / float64(steps)
	q := math.Round(float64(theta)/step) * step
	return units.WrapPhase(units.Radians(q))
}
