// Package rf models the UHF radio layer between a commodity RFID reader
// and passive backscatter tags: regulatory channel plans and frequency
// hopping, the forward/reverse link budget, and the low-level
// observation model producing the phase, RSSI, and Doppler values a
// reader like the Impinj R420 reports for every tag singulation.
//
// The phase model is Eq. 1 of the paper: θ = (2π/λ·2d + c) mod 2π, with
// a per-(antenna, channel) offset c capturing reader and tag circuit
// delays, additive noise whose variance tracks the reverse-link SNR, and
// the reader's 2π/4096 phase quantization. Channel hopping makes raw
// phase discontinuous every dwell period (Figs. 4–5), the artefact the
// TagBreathe preprocessing exists to remove.
package rf

import (
	"fmt"
	"math/rand"

	"tagbreathe/internal/units"
)

// ChannelPlan is a regulatory frequency plan: the set of center
// frequencies a reader hops among and the dwell time per channel.
type ChannelPlan struct {
	// Name identifies the plan in logs and experiment output.
	Name string
	// Centers lists channel center frequencies in Hz, indexed by
	// channel number as reported in low-level data.
	Centers []units.Hertz
	// Dwell is the residence time per channel in seconds. The paper
	// observes ≈0.2 s per channel (Fig. 5).
	Dwell float64
}

// Validate reports whether the plan is usable.
func (p *ChannelPlan) Validate() error {
	if len(p.Centers) == 0 {
		return fmt.Errorf("rf: channel plan %q has no channels", p.Name)
	}
	if p.Dwell <= 0 {
		return fmt.Errorf("rf: channel plan %q has non-positive dwell %v s", p.Name, p.Dwell)
	}
	for i, f := range p.Centers {
		if f <= 0 {
			return fmt.Errorf("rf: channel plan %q channel %d has non-positive frequency", p.Name, i)
		}
	}
	return nil
}

// PaperPlan reproduces the 10-channel plan visible in Fig. 5 of the
// paper (the reader hops among 10 channels, residing ~0.2 s in each) —
// the Hong Kong 920–925 MHz band divided into 10 × 500 kHz channels.
func PaperPlan() *ChannelPlan {
	centers := make([]units.Hertz, 10)
	for i := range centers {
		centers[i] = 920.25*units.MHz + units.Hertz(i)*500*units.KHz
	}
	return &ChannelPlan{Name: "paper-10ch", Centers: centers, Dwell: 0.2}
}

// FCCPlan is the US 902–928 MHz band: 50 channels of 500 kHz starting
// at 902.75 MHz, hopped pseudo-randomly per FCC part 15 rules.
func FCCPlan() *ChannelPlan {
	centers := make([]units.Hertz, 50)
	for i := range centers {
		centers[i] = 902.75*units.MHz + units.Hertz(i)*500*units.KHz
	}
	return &ChannelPlan{Name: "fcc-50ch", Centers: centers, Dwell: 0.2}
}

// ETSIPlan is the European 865.6–867.6 MHz four-channel plan. ETSI
// readers may sit on one channel far longer; the paper notes fixed
// channels are not permitted in its deployment regions, so this plan
// exists for configurability and tests, not for the headline results.
func ETSIPlan() *ChannelPlan {
	return &ChannelPlan{
		Name: "etsi-4ch",
		Centers: []units.Hertz{
			865.7 * units.MHz,
			866.3 * units.MHz,
			866.9 * units.MHz,
			867.5 * units.MHz,
		},
		Dwell: 4.0,
	}
}

// Hopper produces the pseudo-random channel hopping sequence of a
// frequency-hopping reader. The sequence is a sequence of random
// permutations of the plan's channels (each channel visited once per
// epoch, per FCC hopping rules), drawn from the seeded RNG at
// construction so a run is reproducible.
type Hopper struct {
	plan *ChannelPlan
	seq  []int
}

// NewHopper builds a hopping sequence covering at least horizon seconds.
func NewHopper(plan *ChannelPlan, horizon float64, rng *rand.Rand) (*Hopper, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("rf: non-positive hopper horizon %v s", horizon)
	}
	hops := int(horizon/plan.Dwell) + 2
	h := &Hopper{plan: plan}
	n := len(plan.Centers)
	for len(h.seq) < hops {
		perm := rng.Perm(n)
		// Avoid repeating the same channel back-to-back across epoch
		// boundaries, which real hoppers also avoid.
		if len(h.seq) > 0 && n > 1 && perm[0] == h.seq[len(h.seq)-1] {
			perm[0], perm[n-1] = perm[n-1], perm[0]
		}
		h.seq = append(h.seq, perm...)
	}
	return h, nil
}

// Plan returns the hopper's channel plan.
func (h *Hopper) Plan() *ChannelPlan {
	return h.plan
}

// ChannelAt returns the channel index and center frequency in use at
// simulation time t (seconds). Times beyond the constructed horizon
// wrap around the sequence, keeping long tails well-defined.
func (h *Hopper) ChannelAt(t float64) (index int, center units.Hertz) {
	if t < 0 {
		t = 0
	}
	hop := int(t / h.plan.Dwell)
	idx := h.seq[hop%len(h.seq)]
	return idx, h.plan.Centers[idx]
}

// NextHop returns the time of the first channel transition strictly
// after t.
func (h *Hopper) NextHop(t float64) float64 {
	if t < 0 {
		t = 0
	}
	hop := int(t/h.plan.Dwell) + 1
	return float64(hop) * h.plan.Dwell
}
