package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tagbreathe/internal/units"
)

func TestChannelPlans(t *testing.T) {
	tests := []struct {
		name     string
		plan     *ChannelPlan
		channels int
	}{
		{name: "paper", plan: PaperPlan(), channels: 10},
		{name: "fcc", plan: FCCPlan(), channels: 50},
		{name: "etsi", plan: ETSIPlan(), channels: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.plan.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(tt.plan.Centers) != tt.channels {
				t.Errorf("channels = %d, want %d", len(tt.plan.Centers), tt.channels)
			}
			for _, f := range tt.plan.Centers {
				if f < 860*units.MHz || f > 930*units.MHz {
					t.Errorf("center %v outside the UHF RFID band", f)
				}
			}
		})
	}
	if PaperPlan().Dwell != 0.2 {
		t.Errorf("paper plan dwell %v, want 0.2 s (Fig. 5)", PaperPlan().Dwell)
	}
}

func TestChannelPlanValidation(t *testing.T) {
	bad := &ChannelPlan{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for empty plan")
	}
	bad = &ChannelPlan{Name: "neg", Centers: []units.Hertz{900e6}, Dwell: -1}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative dwell")
	}
	bad = &ChannelPlan{Name: "zero-freq", Centers: []units.Hertz{0}, Dwell: 0.2}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero frequency")
	}
}

func TestHopperDwellAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := NewHopper(PaperPlan(), 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Residence: the channel is constant within one dwell.
	i0, f0 := h.ChannelAt(0.35)
	i1, f1 := h.ChannelAt(0.39)
	if i0 != i1 || f0 != f1 {
		t.Error("channel changed within a dwell period")
	}
	// Coverage: over one epoch (10 hops) every channel appears once —
	// the FCC-style hopping the paper's Fig. 5 shows.
	seen := map[int]int{}
	for hop := 0; hop < 10; hop++ {
		idx, _ := h.ChannelAt(float64(hop)*0.2 + 0.01)
		seen[idx]++
	}
	if len(seen) != 10 {
		t.Errorf("first epoch used %d distinct channels, want 10", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("channel %d visited %d times in one epoch", idx, n)
		}
	}
}

func TestHopperNoImmediateRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, err := NewHopper(PaperPlan(), 600, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for hop := 0; hop < 3000; hop++ {
		idx, _ := h.ChannelAt(float64(hop)*0.2 + 0.05) // mid-dwell: avoids float rounding at boundaries
		if idx == prev {
			t.Fatalf("channel %d repeated back-to-back at hop %d", idx, hop)
		}
		prev = idx
	}
}

func TestHopperNextHop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, err := NewHopper(PaperPlan(), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.NextHop(0.05); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("NextHop(0.05) = %v, want 0.2", got)
	}
	if got := h.NextHop(0.2); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("NextHop(0.2) = %v, want 0.4", got)
	}
	if got := h.NextHop(-1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("NextHop(-1) = %v, want 0.2", got)
	}
}

func TestHopperValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := NewHopper(&ChannelPlan{}, 10, rng); err == nil {
		t.Error("expected error for invalid plan")
	}
	if _, err := NewHopper(PaperPlan(), 0, rng); err == nil {
		t.Error("expected error for zero horizon")
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	f := units.Hertz(915 * units.MHz)
	// Doubling distance adds 6.02 dB.
	l2 := FreeSpacePathLoss(2, f)
	l4 := FreeSpacePathLoss(4, f)
	if math.Abs(float64(l4-l2)-6.0206) > 0.01 {
		t.Errorf("doubling distance added %v dB, want 6.02", l4-l2)
	}
	// Known value: FSPL at 1 m, 915 MHz ≈ 31.7 dB.
	if l1 := FreeSpacePathLoss(1, f); math.Abs(float64(l1)-31.66) > 0.15 {
		t.Errorf("FSPL(1 m) = %v dB, want ≈31.7", l1)
	}
	// Near-field clamp.
	if FreeSpacePathLoss(0.01, f) != FreeSpacePathLoss(0.1, f) {
		t.Error("sub-10 cm distances should clamp")
	}
}

func TestLinkBudgetMonotonicInDistance(t *testing.T) {
	lb := DefaultLinkBudget()
	f := PaperPlan().Centers[0]
	prev := lb.Compute(0.5, f, 0, 0)
	for d := 1.0; d <= 10; d += 0.5 {
		l := lb.Compute(d, f, 0, 0)
		if l.ForwardPower >= prev.ForwardPower || l.BackscatterPower >= prev.BackscatterPower {
			t.Fatalf("link power not decreasing at %v m", d)
		}
		if l.SNR >= prev.SNR {
			t.Fatalf("SNR not decreasing at %v m", d)
		}
		prev = l
	}
}

func TestLinkBudgetForwardLossKillsReads(t *testing.T) {
	lb := DefaultLinkBudget()
	f := PaperPlan().Centers[0]
	clear := lb.Compute(4, f, 0, 0)
	blocked := lb.Compute(4, f, 45, 45)
	if lb.ReadSuccessProbability(clear) < 0.9 {
		t.Errorf("clear 4 m link success %v, want ≥ 0.9", lb.ReadSuccessProbability(clear))
	}
	if p := lb.ReadSuccessProbability(blocked); p > 0.01 {
		t.Errorf("blocked link success %v, want ≈0", p)
	}
}

func TestLinkBudgetFig15RSSIBehaviour(t *testing.T) {
	// The Fig. 15 split: forward-only loss collapses read probability
	// while the backscatter power (reported RSSI) barely moves.
	lb := DefaultLinkBudget()
	f := PaperPlan().Centers[0]
	facing := lb.Compute(4, f, 0, 0)
	sideways := lb.Compute(4, f, 9, 2.7) // TagPatternLoss(90°) split
	dropP := lb.ReadSuccessProbability(facing) - lb.ReadSuccessProbability(sideways)
	if dropP < 0.5 {
		t.Errorf("read probability only dropped %v turning sideways, want > 0.5", dropP)
	}
	dRSSI := float64(facing.BackscatterPower - sideways.BackscatterPower)
	if dRSSI > 4 {
		t.Errorf("RSSI dropped %v dB turning sideways, want ≤ 4 (paper: roughly flat)", dRSSI)
	}
}

func TestReadSuccessProbabilityBounds(t *testing.T) {
	lb := DefaultLinkBudget()
	f := PaperPlan().Centers[0]
	p := func(d float64, extra units.DB) float64 {
		return lb.ReadSuccessProbability(lb.Compute(d, f, extra, extra))
	}
	quickOK := func(dRaw, lossRaw uint16) bool {
		d := 0.2 + float64(dRaw%120)/10 // 0.2..12.2 m
		loss := units.DB(lossRaw % 60)
		v := p(d, loss)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(quickOK, nil); err != nil {
		t.Error(err)
	}
	// Below reader sensitivity: zero, not merely small.
	if v := p(12, 40); v != 0 {
		t.Errorf("deep fade success = %v, want 0", v)
	}
}

func TestPhaseNoiseGrowsAsSNRFalls(t *testing.T) {
	lb := DefaultLinkBudget()
	f := PaperPlan().Centers[0]
	near := lb.PhaseNoiseStdDev(lb.Compute(1, f, 0, 0))
	far := lb.PhaseNoiseStdDev(lb.Compute(6, f, 0, 0))
	if far <= near {
		t.Errorf("phase noise at 6 m (%v) not above 1 m (%v)", far, near)
	}
	// Floor: even a perfect link keeps nonzero noise.
	if near < 0.01 {
		t.Errorf("near-field phase noise %v below the commodity floor", near)
	}
	// Unusable link saturates at π.
	dead := Link{SNR: -200}
	if got := lb.PhaseNoiseStdDev(dead); got != math.Pi {
		t.Errorf("dead link noise %v, want π", got)
	}
}

func TestObserverPhaseEquation(t *testing.T) {
	// With noise disabled, moving a tag by λ/4 changes the reported
	// phase by π (Eq. 1: round trip doubles the path change).
	lb := DefaultLinkBudget()
	lb.NoiseFloor = -200 // drive SNR-dependent noise to the floor
	cfg := DefaultObserverConfig()
	cfg.RSSINoiseStdDev = 0
	cfg.MultipathPhaseRippleRad = 0
	cfg.MultipathRippleDB = 0
	cfg.PhaseQuantizationSteps = 1 << 20 // fine grid
	obs := NewObserver(lb, cfg, rand.New(rand.NewSource(5)))

	f := units.Hertz(920 * units.MHz)
	lambda := float64(f.Wavelength())
	req := ReadRequest{TagID: 1, Antenna: 1, Channel: 0, Frequency: f, Distance: 3}
	o1 := obs.Observe(req)
	req.Distance = 3 + lambda/4
	o2 := obs.Observe(req)
	dphi := float64(units.WrapPhaseDiff(o2.Phase - o1.Phase))
	// Noise floor is still 0.03 rad; allow a few sigma.
	if math.Abs(math.Abs(dphi)-math.Pi) > 0.25 {
		t.Errorf("λ/4 displacement produced Δθ = %v, want ±π", dphi)
	}
}

func TestObserverStaticTagStablePhase(t *testing.T) {
	obs := NewObserver(DefaultLinkBudget(), DefaultObserverConfig(), rand.New(rand.NewSource(6)))
	f := units.Hertz(920 * units.MHz)
	req := ReadRequest{TagID: 9, Antenna: 1, Channel: 3, Frequency: f, Distance: 4}
	var phases []float64
	for i := 0; i < 200; i++ {
		phases = append(phases, float64(obs.Observe(req).Phase))
	}
	// Static tag on a fixed channel: phase varies only by noise (a
	// fraction of a radian), never by wraps.
	for i := 1; i < len(phases); i++ {
		d := math.Abs(float64(units.WrapPhaseDiff(units.Radians(phases[i] - phases[0]))))
		if d > 0.5 {
			t.Fatalf("static phase moved %v rad between reads", d)
		}
	}
}

func TestObserverChannelOffsetsDiffer(t *testing.T) {
	// Hidden per-channel constants make raw phase discontinuous at
	// hops (Fig. 4) even for a static tag.
	obs := NewObserver(DefaultLinkBudget(), DefaultObserverConfig(), rand.New(rand.NewSource(7)))
	f := units.Hertz(920 * units.MHz)
	base := ReadRequest{TagID: 1, Antenna: 1, Frequency: f, Distance: 4}
	distinct := 0
	ref := obs.Observe(base)
	for ch := 1; ch < 10; ch++ {
		req := base
		req.Channel = ch
		o := obs.Observe(req)
		if math.Abs(float64(units.WrapPhaseDiff(o.Phase-ref.Phase))) > 0.3 {
			distinct++
		}
	}
	if distinct < 6 {
		t.Errorf("only %d/9 channels show distinct phase offsets", distinct)
	}
}

func TestObserverRSSIQuantization(t *testing.T) {
	obs := NewObserver(DefaultLinkBudget(), DefaultObserverConfig(), rand.New(rand.NewSource(8)))
	f := units.Hertz(920 * units.MHz)
	req := ReadRequest{TagID: 2, Antenna: 1, Channel: 0, Frequency: f, Distance: 2}
	for i := 0; i < 50; i++ {
		rssi := float64(obs.Observe(req).RSSI)
		if r := math.Mod(math.Abs(rssi), 0.5); r > 1e-9 && r < 0.5-1e-9 {
			t.Fatalf("RSSI %v not on the 0.5 dBm grid", rssi)
		}
	}
}

func TestObserverPhaseQuantization(t *testing.T) {
	obs := NewObserver(DefaultLinkBudget(), DefaultObserverConfig(), rand.New(rand.NewSource(9)))
	f := units.Hertz(920 * units.MHz)
	req := ReadRequest{TagID: 3, Antenna: 1, Channel: 1, Frequency: f, Distance: 3}
	step := 2 * math.Pi / 4096
	for i := 0; i < 50; i++ {
		p := float64(obs.Observe(req).Phase)
		k := p / step
		if math.Abs(k-math.Round(k)) > 1e-6 {
			t.Fatalf("phase %v not on the 4096-step grid", p)
		}
	}
}

func TestObserverDopplerTracksVelocity(t *testing.T) {
	lb := DefaultLinkBudget()
	cfg := DefaultObserverConfig()
	cfg.DopplerNoiseStdDev = 0
	obs := NewObserver(lb, cfg, rand.New(rand.NewSource(10)))
	f := units.Hertz(920 * units.MHz)
	lambda := float64(f.Wavelength())
	v := 0.01 // 1 cm/s receding
	o := obs.Observe(ReadRequest{TagID: 4, Antenna: 1, Channel: 0, Frequency: f, Distance: 4, RadialVelocity: v})
	want := -2 * v / lambda
	if math.Abs(o.DopplerHz-want) > 1e-9 {
		t.Errorf("Doppler = %v Hz, want %v (Eq. 2 sign convention)", o.DopplerHz, want)
	}
}

func TestObserverDeterminism(t *testing.T) {
	mk := func() []Observation {
		obs := NewObserver(DefaultLinkBudget(), DefaultObserverConfig(), rand.New(rand.NewSource(11)))
		f := units.Hertz(921 * units.MHz)
		var out []Observation
		for i := 0; i < 20; i++ {
			out = append(out, obs.Observe(ReadRequest{
				TagID: uint64(i % 3), Antenna: 1 + i%2, Channel: i % 5,
				Frequency: f, Distance: 2 + float64(i)*0.1,
			}))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at observation %d", i)
		}
	}
}

func TestObserverPiAmbiguity(t *testing.T) {
	cfg := DefaultObserverConfig()
	cfg.PiAmbiguity = true
	obs := NewObserver(DefaultLinkBudget(), cfg, rand.New(rand.NewSource(12)))
	f := units.Hertz(920 * units.MHz)
	req := ReadRequest{TagID: 5, Antenna: 1, Channel: 2, Frequency: f, Distance: 4}
	flips := 0
	prev := obs.Observe(req).Phase
	for i := 0; i < 200; i++ {
		p := obs.Observe(req).Phase
		d := math.Abs(float64(units.WrapPhaseDiff(p - prev)))
		if d > math.Pi/2 {
			flips++
		}
		prev = p
	}
	if flips < 50 {
		t.Errorf("only %d/200 reads flipped by π; ambiguity not active", flips)
	}
}
