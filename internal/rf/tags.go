package rf

import "tagbreathe/internal/units"

// TagModel captures the RF personality of a commodity tag product:
// chip sensitivity, antenna gain, and backscatter efficiency. §V of
// the paper evaluates Alien 9640, Alien 9652, and Impinj H47 tags and
// reports comparable performance; these profiles (datasheet-level
// differences) let the harness verify that claim holds in the model.
type TagModel struct {
	// Name identifies the product in experiment output.
	Name string
	// Sensitivity is the chip power-up threshold.
	Sensitivity units.DBm
	// AntennaGain is the tag antenna boresight gain.
	AntennaGain units.DB
	// BackscatterLoss is the modulation conversion loss.
	BackscatterLoss units.DB
}

// Tag models from public datasheets (Higgs-3 and Monza-4 class chips).
var (
	// TagAlien9640 is the paper's reported tag (Alien "Squiggle",
	// Higgs-3 chip) — the calibration reference.
	TagAlien9640 = TagModel{Name: "alien-9640", Sensitivity: -18.0, AntennaGain: 2.0, BackscatterLoss: 5.0}
	// TagAlien9652 is a larger inlay with slightly better forward
	// sensitivity.
	TagAlien9652 = TagModel{Name: "alien-9652", Sensitivity: -18.5, AntennaGain: 2.3, BackscatterLoss: 5.0}
	// TagImpinjH47 is a Monza-4 inlay: more sensitive chip, slightly
	// lower backscatter gain.
	TagImpinjH47 = TagModel{Name: "impinj-h47", Sensitivity: -19.5, AntennaGain: 1.8, BackscatterLoss: 5.5}
)

// PaperTagModels are the three products §V evaluates.
var PaperTagModels = []TagModel{TagAlien9640, TagAlien9652, TagImpinjH47}

// Apply returns a copy of the budget with the tag model's parameters
// substituted.
func (m TagModel) Apply(budget *LinkBudget) *LinkBudget {
	b := *budget
	b.TagSensitivity = m.Sensitivity
	b.TagAntennaGain = m.AntennaGain
	b.BackscatterLoss = m.BackscatterLoss
	return &b
}
