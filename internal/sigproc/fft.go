// Package sigproc is the signal-processing substrate for TagBreathe: FFT
// and inverse FFT for arbitrary lengths, frequency-domain and FIR
// filtering, windowing, resampling of irregularly sampled series onto a
// uniform grid, detrending, zero-crossing detection, peak finding, and
// descriptive statistics.
//
// The paper's breath-extraction pipeline (§IV-B) is built from these
// parts: an FFT-based low-pass filter with a 0.67 Hz cutoff, an inverse
// FFT back to the time domain, and a zero-crossing rate estimator. The
// package has no dependencies beyond the standard library and no package
// state; everything is a pure function over slices.
package sigproc

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"tagbreathe/internal/fmath"
)

// FFT computes the discrete Fourier transform of x and returns a new
// slice of the same length. Power-of-two lengths use an iterative
// radix-2 Cooley-Tukey transform; other lengths fall back to Bluestein's
// algorithm, so any length is supported in O(n log n). An empty input
// returns an empty output.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse discrete Fourier transform of x, normalized
// by 1/n, and returns a new slice of the same length.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	n := float64(len(out))
	for i := range out {
		out[i] /= complex(n, 0)
	}
	return out
}

// FFTReal transforms a real-valued series. It is a convenience wrapper
// that widens to complex128 and calls FFT.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// fftInPlace dispatches on length: radix-2 for powers of two, Bluestein
// otherwise. inverse selects the conjugate-twiddle transform (without
// normalization; IFFT applies 1/n).
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is an iterative in-place Cooley-Tukey FFT for power-of-two n.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n-1)))
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := 2 * math.Pi / float64(size) * sign
		// Per-block twiddle recurrence would accumulate error over long
		// transforms; computing each twiddle directly keeps the
		// round-trip error near machine epsilon, which the property
		// tests assert.
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				s, c := math.Sincos(step * float64(k))
				w := complex(c, s)
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using a
// zero-padded power-of-two FFT of length ≥ 2n-1 (chirp z-transform).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w[k] = exp(sign * iπ k² / n). Using k² mod 2n keeps
	// the argument small and the sin/cos accurate for large k.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		s, c := math.Sincos(sign * math.Pi * float64(kk) / float64(n))
		w[k] = complex(c, s)
	}

	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		conj := cmplx.Conj(w[k])
		b[k] = conj
		if k > 0 {
			b[m-k] = conj
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}

// Magnitudes returns |x[i]| for each bin of a spectrum.
func Magnitudes(x []complex128) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// FrequencyBins returns the frequency in Hz represented by each FFT bin
// for a transform of length n over samples spaced 1/sampleRate apart.
// Bins above n/2 are the usual negative frequencies and are reported as
// such (e.g. bin n-1 is -sampleRate/n).
func FrequencyBins(n int, sampleRate float64) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	df := sampleRate / float64(n)
	for i := range out {
		if i <= n/2 {
			out[i] = float64(i) * df
		} else {
			out[i] = float64(i-n) * df
		}
	}
	return out
}

// DominantFrequency returns the frequency (Hz) of the largest-magnitude
// positive-frequency bin of the real series x sampled at sampleRate,
// ignoring the DC bin. This is the "FFT peak" breathing-rate estimator
// the paper discusses (and improves upon) in §IV-B. It returns an error
// for series shorter than 4 samples or non-positive sample rates.
func DominantFrequency(x []float64, sampleRate float64) (float64, error) {
	if len(x) < 4 {
		return 0, fmt.Errorf("sigproc: series too short for spectral estimate: %d samples", len(x))
	}
	if sampleRate <= 0 {
		return 0, fmt.Errorf("sigproc: non-positive sample rate %v", sampleRate)
	}
	spec := FFTReal(Detrend(x))
	half := len(spec) / 2
	best, bestMag := 0, 0.0
	for i := 1; i <= half; i++ {
		if m := cmplx.Abs(spec[i]); m > bestMag {
			best, bestMag = i, m
		}
	}
	if best == 0 {
		return 0, nil
	}
	// Quadratic interpolation around the peak refines the estimate well
	// below the 1/w bin resolution the paper calls out as an FFT pitfall.
	df := sampleRate / float64(len(x))
	f := float64(best) * df
	if best > 1 && best < half {
		m1 := cmplx.Abs(spec[best-1])
		m2 := bestMag
		m3 := cmplx.Abs(spec[best+1])
		den := m1 - 2*m2 + m3
		if fmath.NonZero(den) {
			delta := 0.5 * (m1 - m3) / den
			if delta > -1 && delta < 1 {
				f = (float64(best) + delta) * df
			}
		}
	}
	return f, nil
}
