package sigproc

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform the fast implementations
// are checked against.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = acc
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover radix-2 sizes and Bluestein sizes, including primes.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 60, 64, 97, 100, 128} {
		x := randComplex(n, rng)
		got := FFT(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Errorf("FFT(nil) = %v", got)
	}
	got := FFT([]complex128{3 + 4i})
	if len(got) != 1 || got[0] != 3+4i {
		t.Errorf("FFT of single sample = %v", got)
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 8, 15, 16, 33, 64, 100, 255, 256} {
		x := randComplex(n, rng)
		back := IFFT(FFT(x))
		if e := maxErr(x, back); e > 1e-9*float64(n) {
			t.Errorf("n=%d: round-trip error %g", n, e)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// The transform of a unit impulse is flat ones.
	x := make([]complex128, 16)
	x[0] = 1
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d of impulse spectrum = %v, want 1", i, v)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 24 // non-power-of-two exercises Bluestein
		a := randComplex(n, r)
		b := randComplex(n, r)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa, fb, fsum := FFT(a), FFT(b), FFT(sum)
		for i := range fsum {
			if cmplx.Abs(fsum[i]-(fa[i]+alpha*fb[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy in time equals energy in frequency divided by n.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50
		x := randComplex(n, r)
		var et float64
		for _, v := range x {
			et += real(v)*real(v) + imag(v)*imag(v)
		}
		var ef float64
		for _, v := range FFT(x) {
			ef += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(et-ef/float64(n)) < 1e-7*(1+et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	// A pure sinusoid concentrates energy in its frequency bin.
	const n = 128
	const bin = 10
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(bin) * float64(i) / n)
	}
	spec := Magnitudes(FFTReal(x))
	best := 0
	for i := 1; i <= n/2; i++ {
		if spec[i] > spec[best] {
			best = i
		}
	}
	if best != bin {
		t.Errorf("sinusoid peak at bin %d, want %d", best, bin)
	}
}

func TestFrequencyBins(t *testing.T) {
	bins := FrequencyBins(8, 16)
	want := []float64{0, 2, 4, 6, 8, -6, -4, -2}
	for i, w := range want {
		if math.Abs(bins[i]-w) > 1e-12 {
			t.Errorf("bin %d = %v, want %v", i, bins[i], w)
		}
	}
	if got := FrequencyBins(0, 16); got != nil {
		t.Errorf("FrequencyBins(0) = %v, want nil", got)
	}
}

func TestDominantFrequency(t *testing.T) {
	const fs = 16.0
	const f0 = 0.25 // 15 bpm
	n := int(fs * 60)
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = 3*math.Sin(2*math.Pi*f0*ti) + 0.1*math.Sin(2*math.Pi*3*ti)
	}
	got, err := DominantFrequency(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-f0) > 0.01 {
		t.Errorf("DominantFrequency = %v, want %v", got, f0)
	}
}

func TestDominantFrequencyErrors(t *testing.T) {
	if _, err := DominantFrequency([]float64{1, 2}, 10); err == nil {
		t.Error("expected error for short input")
	}
	if _, err := DominantFrequency(make([]float64, 64), 0); err == nil {
		t.Error("expected error for zero sample rate")
	}
}

func BenchmarkFFTRadix2_1024(b *testing.B) {
	x := randComplex(1024, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_1000(b *testing.B) {
	x := randComplex(1000, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
