package sigproc

import (
	"fmt"
	"math"

	"tagbreathe/internal/fmath"
)

// LowPassFFT filters x with an ideal ("brick-wall") frequency-domain
// low-pass filter: FFT, zero all bins above cutoffHz, inverse FFT. This
// is the filter §IV-B of the paper applies with a 0.67 Hz cutoff before
// zero-crossing analysis. The input is not modified.
func LowPassFFT(x []float64, sampleRate, cutoffHz float64) ([]float64, error) {
	return BandPassFFT(x, sampleRate, 0, cutoffHz)
}

// BandPassFFT filters x with an ideal frequency-domain band-pass filter
// keeping frequencies in [lowHz, highHz]. lowHz = 0 keeps DC (a pure
// low-pass); highHz must exceed lowHz. The paper's pipeline uses the
// band-pass form with a small lowHz to remove the slow drift that noise
// integration adds to the displacement accumulation.
func BandPassFFT(x []float64, sampleRate, lowHz, highHz float64) ([]float64, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("sigproc: non-positive sample rate %v", sampleRate)
	}
	if lowHz < 0 || highHz <= lowHz {
		return nil, fmt.Errorf("sigproc: invalid band [%v, %v] Hz", lowHz, highHz)
	}
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	spec := FFTReal(x)
	df := sampleRate / float64(n)
	for i := range spec {
		f := float64(i) * df
		if i > n/2 {
			f = float64(n-i) * df // mirror bin; same |frequency|
		}
		keep := f >= lowHz && f <= highHz
		if i == 0 && fmath.ExactZero(lowHz) {
			keep = true // DC passes a pure low-pass
		}
		if !keep {
			spec[i] = 0
		}
	}
	y := IFFT(spec)
	out := make([]float64, n)
	for i, v := range y {
		out[i] = real(v)
	}
	return out, nil
}

// FIRLowPass designs a linear-phase FIR low-pass filter with the given
// number of taps (odd; even values are rounded up) using the windowed-
// sinc method with a Hamming window. The paper notes a FIR low-pass can
// substitute for the FFT filter; the ablation benchmarks compare both.
func FIRLowPass(taps int, sampleRate, cutoffHz float64) ([]float64, error) {
	if taps < 3 {
		return nil, fmt.Errorf("sigproc: FIR filter needs at least 3 taps, got %d", taps)
	}
	if sampleRate <= 0 || cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		return nil, fmt.Errorf("sigproc: cutoff %v Hz invalid for sample rate %v Hz", cutoffHz, sampleRate)
	}
	if taps%2 == 0 {
		taps++
	}
	h := make([]float64, taps)
	fc := cutoffHz / sampleRate // normalized cutoff in cycles/sample
	mid := taps / 2
	var sum float64
	for i := range h {
		m := float64(i - mid)
		var v float64
		if fmath.ExactZero(m) {
			v = 2 * math.Pi * fc
		} else {
			v = math.Sin(2*math.Pi*fc*m) / m
		}
		// Hamming window tapers the truncated sinc.
		v *= 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = v
		sum += v
	}
	// Normalize for unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// Convolve applies FIR coefficients h to x and returns a series of the
// same length as x, delay-compensated so the output aligns with the
// input (group delay of a linear-phase FIR is (len(h)-1)/2 samples).
// Edges are handled by reflecting the input.
func Convolve(x, h []float64) []float64 {
	n, m := len(x), len(h)
	if n == 0 || m == 0 {
		return nil
	}
	out := make([]float64, n)
	delay := (m - 1) / 2
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < m; j++ {
			k := i + delay - j
			// Reflect indices off both edges.
			for k < 0 || k >= n {
				if k < 0 {
					k = -k - 1
				}
				if k >= n {
					k = 2*n - k - 1
				}
			}
			acc += x[k] * h[j]
		}
		out[i] = acc
	}
	return out
}

// MovingAverage smooths x with a centered window of the given width
// (forced odd). It is used to estimate slow drift for detrending and as
// a cheap smoother for RSSI-based baselines.
func MovingAverage(x []float64, width int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if width < 1 {
		width = 1
	}
	if width%2 == 0 {
		width++
	}
	half := width / 2
	out := make([]float64, n)
	// Prefix sums give O(n) evaluation regardless of window width.
	prefix := make([]float64, n+1)
	for i, v := range x {
		prefix[i+1] = prefix[i] + v
	}
	for i := 0; i < n; i++ {
		lo := i - half
		hi := i + half
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}
