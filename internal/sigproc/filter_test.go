package sigproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sine builds fs-sampled samples of Σ amps[i]·sin(2π freqs[i] t).
func sine(n int, fs float64, freqs, amps []float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		ti := float64(i) / fs
		for j, f := range freqs {
			out[i] += amps[j] * math.Sin(2*math.Pi*f*ti)
		}
	}
	return out
}

// bandPower measures mean squared amplitude of x.
func bandPower(x []float64) float64 {
	var p float64
	for _, v := range x {
		p += v * v
	}
	return p / float64(len(x))
}

func TestLowPassFFTRemovesHighBand(t *testing.T) {
	const fs = 16.0
	n := int(fs * 60)
	low := sine(n, fs, []float64{0.2}, []float64{1})
	noisy := sine(n, fs, []float64{0.2, 3.0}, []float64{1, 1})
	filtered, err := LowPassFFT(noisy, fs, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	// The filtered signal should match the low component closely.
	var diff float64
	for i := range filtered {
		d := filtered[i] - low[i]
		diff += d * d
	}
	if rel := diff / float64(n) / bandPower(low); rel > 0.01 {
		t.Errorf("low-pass residual power ratio %v, want < 1%%", rel)
	}
}

func TestBandPassFFTRemovesDCAndDrift(t *testing.T) {
	const fs = 16.0
	n := int(fs * 100)
	x := sine(n, fs, []float64{0.2}, []float64{1})
	for i := range x {
		x[i] += 5 + 0.01*float64(i) // DC offset plus drift
	}
	filtered, err := BandPassFFT(x, fs, 0.05, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	if m := math.Abs(Mean(filtered)); m > 0.05 {
		t.Errorf("band-passed mean %v, want ≈0", m)
	}
	// The 0.2 Hz component must survive with most of its power
	// (interior only: FFT filtering of a drifting signal rings at the
	// window edges).
	lo, hi := n/10, n*9/10
	if p := bandPower(filtered[lo:hi]); p < 0.3 {
		t.Errorf("in-band power %v after band-pass, want ≳0.45", p)
	}
}

func TestBandPassFFTValidation(t *testing.T) {
	x := make([]float64, 64)
	if _, err := BandPassFFT(x, 0, 0.1, 0.5); err == nil {
		t.Error("expected error for zero sample rate")
	}
	if _, err := BandPassFFT(x, 16, 0.5, 0.1); err == nil {
		t.Error("expected error for inverted band")
	}
	if _, err := BandPassFFT(x, 16, -1, 0.5); err == nil {
		t.Error("expected error for negative low edge")
	}
	out, err := BandPassFFT(nil, 16, 0.1, 0.5)
	if err != nil || out != nil {
		t.Errorf("empty input: got %v, %v", out, err)
	}
}

func TestFIRLowPassDesign(t *testing.T) {
	h, err := FIRLowPass(51, 16, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 51 {
		t.Fatalf("taps = %d, want 51", len(h))
	}
	// Unity DC gain.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("DC gain %v, want 1", sum)
	}
	// Linear phase: symmetric taps.
	for i := range h {
		if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
			t.Fatalf("taps not symmetric at %d", i)
		}
	}
}

func TestFIRLowPassEvenTapsRoundedUp(t *testing.T) {
	h, err := FIRLowPass(50, 16, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	if len(h)%2 != 1 {
		t.Errorf("taps = %d, want odd", len(h))
	}
}

func TestFIRLowPassValidation(t *testing.T) {
	if _, err := FIRLowPass(1, 16, 0.5); err == nil {
		t.Error("expected error for too few taps")
	}
	if _, err := FIRLowPass(11, 16, 9); err == nil {
		t.Error("expected error for cutoff above Nyquist")
	}
	if _, err := FIRLowPass(11, 0, 0.5); err == nil {
		t.Error("expected error for zero sample rate")
	}
}

func TestFIRFiltering(t *testing.T) {
	const fs = 16.0
	n := int(fs * 60)
	low := sine(n, fs, []float64{0.2}, []float64{1})
	noisy := sine(n, fs, []float64{0.2, 4.0}, []float64{1, 1})
	h, err := FIRLowPass(101, fs, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	filtered := Convolve(noisy, h)
	if len(filtered) != n {
		t.Fatalf("output length %d, want %d", len(filtered), n)
	}
	// Delay-compensated: interior samples track the low component.
	var diff, ref float64
	for i := n / 10; i < n*9/10; i++ {
		d := filtered[i] - low[i]
		diff += d * d
		ref += low[i] * low[i]
	}
	if rel := diff / ref; rel > 0.02 {
		t.Errorf("FIR residual power ratio %v, want < 2%%", rel)
	}
}

func TestConvolveEdgeCases(t *testing.T) {
	if got := Convolve(nil, []float64{1}); got != nil {
		t.Errorf("Convolve(nil) = %v", got)
	}
	if got := Convolve([]float64{1, 2}, nil); got != nil {
		t.Errorf("Convolve(x, nil) = %v", got)
	}
	// Identity kernel returns the input.
	x := []float64{1, 2, 3, 4}
	got := Convolve(x, []float64{1})
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity convolution mismatch at %d", i)
		}
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 1, 1, 10, 1, 1, 1}
	got := MovingAverage(x, 3)
	if math.Abs(got[3]-4) > 1e-12 {
		t.Errorf("center = %v, want 4", got[3])
	}
	if math.Abs(got[0]-1) > 1e-12 {
		t.Errorf("edge = %v, want 1", got[0])
	}
	// A width-1 window is the identity.
	id := MovingAverage(x, 1)
	for i := range x {
		if id[i] != x[i] {
			t.Fatalf("width-1 mismatch at %d", i)
		}
	}
}

func TestMovingAveragePreservesMeanOfConstant(t *testing.T) {
	f := func(c float64, wRaw uint8) bool {
		// Huge magnitudes overflow the prefix sums; physical data
		// never approaches them.
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e300 {
			return true
		}
		x := make([]float64, 32)
		for i := range x {
			x[i] = c
		}
		w := int(wRaw%31) + 1
		for _, v := range MovingAverage(x, w) {
			if math.Abs(v-c) > 1e-9*(1+math.Abs(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverageMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const width = 9
	got := MovingAverage(x, width)
	half := width / 2
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(x)-1 {
			hi = len(x) - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += x[j]
		}
		want := sum / float64(hi-lo+1)
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("index %d: got %v want %v", i, got[i], want)
		}
	}
}
