package sigproc

import "tagbreathe/internal/fmath"

// Peak is a local maximum of a series: its index and value.
type Peak struct {
	Index int
	Value float64
}

// FindPeaks returns the local maxima of x that exceed minHeight and are
// separated from any larger accepted peak by at least minDistance
// samples. Peaks are returned in index order. Plateaus report their
// first index.
//
// Peak analysis supports the spectral breathing-rate estimator and the
// per-breath segmentation used in the extended examples.
func FindPeaks(x []float64, minHeight float64, minDistance int) []Peak {
	n := len(x)
	if n < 3 {
		return nil
	}
	if minDistance < 1 {
		minDistance = 1
	}
	var candidates []Peak
	for i := 1; i < n-1; i++ {
		if x[i] < minHeight {
			continue
		}
		if x[i] > x[i-1] && x[i] >= x[i+1] {
			// Skip to the end of a plateau so it yields one peak.
			j := i
			for j+1 < n && fmath.ExactEq(x[j+1], x[i]) {
				j++
			}
			if j+1 >= n || x[j+1] < x[i] {
				candidates = append(candidates, Peak{Index: i, Value: x[i]})
			}
			i = j
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	// Greedy suppression: accept peaks from tallest to shortest, then
	// restore index order.
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending value; candidate lists are short.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && candidates[order[j]].Value > candidates[order[j-1]].Value; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	accepted := make([]bool, len(candidates))
	for _, ci := range order {
		ok := true
		for aj, isAcc := range accepted {
			if !isAcc {
				continue
			}
			d := candidates[ci].Index - candidates[aj].Index
			if d < 0 {
				d = -d
			}
			if d < minDistance {
				ok = false
				break
			}
		}
		accepted[ci] = ok
	}
	var out []Peak
	for i, p := range candidates {
		if accepted[i] {
			out = append(out, p)
		}
	}
	return out
}

// Autocorrelation returns the biased autocorrelation of x for lags
// 0..maxLag, normalized so lag 0 equals 1 (unless x has zero energy, in
// which case all values are 0). Used by the robustness tests as an
// independent periodicity check on extracted breathing signals.
func Autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	m := Mean(x)
	out := make([]float64, maxLag+1)
	var energy float64
	for _, v := range x {
		d := v - m
		energy += d * d
	}
	if fmath.ExactZero(energy) {
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var acc float64
		for i := 0; i+lag < n; i++ {
			acc += (x[i] - m) * (x[i+lag] - m)
		}
		out[lag] = acc / energy
	}
	return out
}
