package sigproc

import (
	"math"
	"testing"
)

func TestFindPeaksBasic(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	peaks := FindPeaks(x, 0.5, 1)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %d, want 3", len(peaks))
	}
	wantIdx := []int{1, 3, 5}
	for i, p := range peaks {
		if p.Index != wantIdx[i] {
			t.Errorf("peak %d at %d, want %d", i, p.Index, wantIdx[i])
		}
	}
}

func TestFindPeaksMinHeight(t *testing.T) {
	x := []float64{0, 1, 0, 2, 0, 3, 0}
	peaks := FindPeaks(x, 2.5, 1)
	if len(peaks) != 1 || peaks[0].Value != 3 {
		t.Fatalf("peaks above 2.5 = %v, want just the 3", peaks)
	}
}

func TestFindPeaksMinDistance(t *testing.T) {
	// Two close peaks: suppression keeps the taller.
	x := []float64{0, 5, 0, 4, 0, 0, 0, 0, 0, 3, 0}
	peaks := FindPeaks(x, 0.5, 4)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v, want 2 (5 and 3)", peaks)
	}
	if peaks[0].Value != 5 || peaks[1].Value != 3 {
		t.Errorf("kept %v, want the 5 and the 3", peaks)
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	x := []float64{0, 2, 2, 2, 0}
	peaks := FindPeaks(x, 0.5, 1)
	if len(peaks) != 1 {
		t.Fatalf("plateau peaks = %v, want exactly 1", peaks)
	}
	if peaks[0].Index != 1 {
		t.Errorf("plateau reported at %d, want its first index 1", peaks[0].Index)
	}
}

func TestFindPeaksDegenerate(t *testing.T) {
	if p := FindPeaks(nil, 0, 1); p != nil {
		t.Errorf("nil input: %v", p)
	}
	if p := FindPeaks([]float64{1, 2}, 0, 1); p != nil {
		t.Errorf("too short: %v", p)
	}
	// Monotonic signal has no interior peak.
	if p := FindPeaks([]float64{1, 2, 3, 4}, 0, 1); len(p) != 0 {
		t.Errorf("monotonic: %v", p)
	}
}

func TestAutocorrelationPeriodicity(t *testing.T) {
	const fs = 16.0
	const f0 = 0.25
	n := int(fs * 60)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	ac := Autocorrelation(x, int(fs/f0)+4)
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Fatalf("lag-0 autocorrelation %v, want 1", ac[0])
	}
	// A full period later the correlation returns near (n-lag)/n — the
	// biased estimator's expected value for a pure sinusoid.
	period := int(fs / f0)
	n64 := float64(n)
	wantFull := (n64 - float64(period)) / n64
	if math.Abs(ac[period]-wantFull) > 0.03 {
		t.Errorf("autocorrelation at one period = %v, want ≈%v", ac[period], wantFull)
	}
	// Half a period later it is near -(n-lag/2)/n.
	if ac[period/2] > -0.85 {
		t.Errorf("autocorrelation at half period = %v, want ≈-1", ac[period/2])
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if ac := Autocorrelation(nil, 5); ac != nil {
		t.Errorf("nil input: %v", ac)
	}
	// Constant signal: zero energy after mean removal.
	ac := Autocorrelation([]float64{3, 3, 3, 3}, 2)
	for _, v := range ac {
		if v != 0 {
			t.Errorf("constant signal autocorrelation = %v, want zeros", ac)
		}
	}
	// maxLag clamping.
	ac = Autocorrelation([]float64{1, 2, 1}, 99)
	if len(ac) != 3 {
		t.Errorf("clamped lags = %d, want 3", len(ac))
	}
}
