package sigproc

import (
	"fmt"
	"math"
	"sort"

	"tagbreathe/internal/fmath"
)

// Sample is one point of an irregularly sampled time series: a value
// observed at a time offset (seconds from an arbitrary epoch).
//
// RFID tag reads do not arrive on a uniform clock — Gen2 inventory
// timing, contention, and antenna hopping all jitter the spacing — so
// every reader-derived series starts life as []Sample and is resampled
// onto a uniform grid before spectral processing.
type Sample struct {
	T float64 // seconds
	V float64
}

// Resample interpolates the irregular series s onto a uniform grid at
// sampleRate Hz spanning [s[0].T, s[len-1].T], using linear
// interpolation between neighbors. The input must be sorted by time and
// contain at least two points; duplicate timestamps are tolerated (the
// later point wins).
func Resample(s []Sample, sampleRate float64) ([]float64, error) {
	if len(s) < 2 {
		return nil, fmt.Errorf("sigproc: resample needs at least 2 samples, got %d", len(s))
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("sigproc: non-positive sample rate %v", sampleRate)
	}
	if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].T < s[j].T }) {
		return nil, fmt.Errorf("sigproc: resample input is not sorted by time")
	}
	t0, t1 := s[0].T, s[len(s)-1].T
	span := t1 - t0
	if span <= 0 {
		return nil, fmt.Errorf("sigproc: resample input spans zero time")
	}
	n := int(span*sampleRate) + 1
	out := make([]float64, n)
	j := 0
	dt := 1 / sampleRate
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		for j+1 < len(s)-1 && s[j+1].T <= t {
			j++
		}
		a, b := s[j], s[j+1]
		if fmath.ExactEq(b.T, a.T) {
			out[i] = b.V
			continue
		}
		frac := (t - a.T) / (b.T - a.T)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		out[i] = a.V + frac*(b.V-a.V)
	}
	return out, nil
}

// Detrend removes the least-squares straight line from x and returns a
// new slice. Removing linear drift before an FFT avoids smearing energy
// into the low bins where breathing lives.
func Detrend(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		return out // a single point detrends to zero
	}
	// Least-squares fit of x against index.
	var sumI, sumI2, sumX, sumIX float64
	for i, v := range x {
		fi := float64(i)
		sumI += fi
		sumI2 += fi * fi
		sumX += v
		sumIX += fi * v
	}
	fn := float64(n)
	den := fn*sumI2 - sumI*sumI
	var slope, intercept float64
	if fmath.NonZero(den) {
		slope = (fn*sumIX - sumI*sumX) / den
		intercept = (sumX - slope*sumI) / fn
	} else {
		intercept = sumX / fn
	}
	for i, v := range x {
		out[i] = v - (intercept + slope*float64(i))
	}
	return out
}

// Normalize scales x to zero mean and unit peak amplitude, matching the
// "normalized displacement" presentation of Fig. 6. A constant series
// normalizes to all zeros.
func Normalize(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	mean := Mean(x)
	var peak float64
	for _, v := range x {
		if a := math.Abs(v - mean); a > peak {
			peak = a
		}
	}
	if fmath.ExactZero(peak) {
		return out
	}
	for i, v := range x {
		out[i] = (v - mean) / peak
	}
	return out
}

// CumSum returns the running sum of x: out[i] = Σ_{k≤i} x[k]. This
// implements the displacement accumulation of Eqs. 4 and 7.
func CumSum(x []float64) []float64 {
	out := make([]float64, len(x))
	var acc float64
	for i, v := range x {
		acc += v
		out[i] = acc
	}
	return out
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// StdDev returns the population standard deviation of x, or 0 for
// fewer than two samples.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x)))
}

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	return math.Sqrt(ss / float64(len(x)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of x using
// linear interpolation between order statistics. It copies x rather
// than sorting the caller's slice. An empty input returns 0.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(lo)
	// Convex combination rather than s[lo]+frac*(s[hi]-s[lo]): the
	// difference form overflows when the two order statistics sit near
	// opposite float64 extremes.
	return s[lo]*(1-frac) + s[lo+1]*frac
}
