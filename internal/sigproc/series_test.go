package sigproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResampleLinear(t *testing.T) {
	s := []Sample{{T: 0, V: 0}, {T: 1, V: 10}, {T: 2, V: 0}}
	out, err := Resample(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2.5, 5, 7.5, 10, 7.5, 5, 2.5, 0}
	if len(out) != len(want) {
		t.Fatalf("length %d, want %d", len(out), len(want))
	}
	for i, w := range want {
		if math.Abs(out[i]-w) > 1e-9 {
			t.Errorf("sample %d = %v, want %v", i, out[i], w)
		}
	}
}

func TestResampleIrregularInput(t *testing.T) {
	// Jittered sampling of a line must reproduce the line exactly
	// (linear interpolation is exact for affine signals).
	rng := rand.New(rand.NewSource(5))
	var s []Sample
	tt := 0.0
	for tt < 10 {
		s = append(s, Sample{T: tt, V: 3*tt + 1})
		tt += 0.05 + 0.1*rng.Float64()
	}
	out, err := Resample(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		x := s[0].T + float64(i)/16
		if math.Abs(v-(3*x+1)) > 1e-9 {
			t.Fatalf("sample %d = %v, want %v", i, v, 3*x+1)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample([]Sample{{T: 0, V: 1}}, 10); err == nil {
		t.Error("expected error for single sample")
	}
	if _, err := Resample([]Sample{{T: 0}, {T: 1}}, 0); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, err := Resample([]Sample{{T: 1}, {T: 0}}, 10); err == nil {
		t.Error("expected error for unsorted input")
	}
	if _, err := Resample([]Sample{{T: 2, V: 1}, {T: 2, V: 2}}, 10); err == nil {
		t.Error("expected error for zero time span")
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	f := func(slope, intercept float64) bool {
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 ||
			math.IsNaN(slope+intercept) || math.IsInf(slope+intercept, 0) {
			return true
		}
		x := make([]float64, 50)
		for i := range x {
			x[i] = intercept + slope*float64(i)
		}
		scale := 1 + math.Abs(slope)*50 + math.Abs(intercept)
		for _, v := range Detrend(x) {
			if math.Abs(v) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetrendPreservesResidual(t *testing.T) {
	// Detrending a sinusoid (zero-mean, zero net slope over whole
	// periods) leaves it nearly intact.
	n := 160
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	d := Detrend(x)
	// A least-squares line fit against finitely many whole periods is
	// small but not exactly zero; require the residual distortion to
	// stay well under the signal amplitude.
	var distortion, energy float64
	for i := range x {
		e := d[i] - x[i]
		distortion += e * e
		energy += x[i] * x[i]
	}
	if ratio := distortion / energy; ratio > 0.02 {
		t.Fatalf("detrend distortion ratio %v, want < 2%%", ratio)
	}
}

func TestDetrendDegenerate(t *testing.T) {
	if got := Detrend(nil); len(got) != 0 {
		t.Errorf("Detrend(nil) = %v", got)
	}
	if got := Detrend([]float64{7}); got[0] != 0 {
		t.Errorf("Detrend(single) = %v, want [0]", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{2, 4, 6}
	got := Normalize(x)
	// Mean 4, peak deviation 2 → {-1, 0, 1}.
	want := []float64{-1, 0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, v := range Normalize([]float64{5, 5, 5}) {
		if v != 0 {
			t.Errorf("constant normalizes to %v, want 0", v)
		}
	}
}

func TestNormalizeBounds(t *testing.T) {
	f := func(raw []float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		for _, v := range Normalize(raw) {
			if math.Abs(v) > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3, -10})
	want := []float64{1, 3, 6, -4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CumSum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := CumSum(nil); len(got) != 0 {
		t.Errorf("CumSum(nil) = %v", got)
	}
}

func TestStats(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(x); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if r := RMS([]float64{3, 4}); math.Abs(r-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", r)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || RMS(nil) != 0 {
		t.Error("degenerate stats should be 0")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 100, want: 5},
		{p: 50, want: 3},
		{p: 25, want: 2},
		{p: -5, want: 1},  // clamps
		{p: 120, want: 5}, // clamps
	}
	for _, tt := range tests {
		if got := Percentile(x, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Percentile([]float64{42}, 50); got != 42 {
		t.Errorf("Percentile(single) = %v", got)
	}
	// Input must not be mutated.
	if x[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(raw, pa) <= Percentile(raw, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
