package sigproc

import (
	"fmt"

	"tagbreathe/internal/fmath"
)

// Streaming counterparts of the batch filtering primitives. The batch
// pipeline filters a whole window at once (Convolve, MovingAverage,
// BandPassFFT); the incremental stage engine instead pushes one sample
// at a time through stateful operators whose per-sample cost is O(taps)
// regardless of how long the stream or the analysis window is. All
// operators here are causal: the price of statefulness is group delay —
// a linear-phase FIR of m taps reports the signal (m−1)/2 samples late.

// StreamFIR is a causal FIR filter: Push(x) returns
//
//	y[n] = Σ_j h[j]·x[n−j]
//
// with the stream zero-padded before its start. For a linear-phase
// (symmetric) h the output is the input delayed by Delay() samples, so
// callers align timestamps by subtracting Delay() sample periods.
type StreamFIR struct {
	h    []float64
	ring []float64 // last len(h) inputs; zero-initialized = zero padding
	pos  int       // slot the next input will be written to
}

// NewStreamFIR builds a streaming FIR from coefficients h (most callers
// design h with FIRLowPass). h is not copied; do not mutate it.
func NewStreamFIR(h []float64) (*StreamFIR, error) {
	if len(h) == 0 {
		return nil, fmt.Errorf("sigproc: empty FIR coefficient vector")
	}
	return &StreamFIR{h: h, ring: make([]float64, len(h))}, nil
}

// Delay returns the filter's group delay in samples, (len(h)−1)/2.
func (f *StreamFIR) Delay() int { return (len(f.h) - 1) / 2 }

// Push consumes one input sample and returns the next output sample.
//
//tagbreathe:hotpath O(taps) per sample, every sample of every stream
func (f *StreamFIR) Push(x float64) float64 {
	m := len(f.h)
	f.ring[f.pos] = x
	var acc float64
	// ring[pos] holds x[n], ring[pos-1] holds x[n-1], …
	k := f.pos
	for j := 0; j < m; j++ {
		acc += f.h[j] * f.ring[k]
		k--
		if k < 0 {
			k = m - 1
		}
	}
	f.pos++
	if f.pos == m {
		f.pos = 0
	}
	return acc
}

// Rebase subtracts c from every retained input sample, as if the whole
// stream so far had been shifted down by c. For a DC-normalized h
// (Σh = 1) the post-warmup output shifts by exactly −c; the engine uses
// this to fold window-exited mass out of its running Eq. 7 accumulator
// without injecting a step transient into the filter.
func (f *StreamFIR) Rebase(c float64) {
	for i := range f.ring {
		f.ring[i] -= c
	}
}

// StreamBandPass is the causal streaming equivalent of the batch FIR
// band-pass used by ExtractBreath's FIR path: a windowed-sinc low-pass
// at highHz followed by subtraction of a centered moving average of
// width ≈ rate/lowHz (the drift-removal high-pass leg). Push returns,
// for the n-th input sample, the band-passed value of input sample
// n − Delay(); outputs are fully settled once Warmup() samples have
// been pushed (before that the implicit zero padding still rings).
type StreamBandPass struct {
	fir  *StreamFIR
	win  []float64 // last w low-passed values
	sum  float64   // running sum of win
	w    int
	half int
	idx  int // samples pushed so far
}

// NewStreamBandPass designs a streaming band-pass for the given sample
// rate keeping [lowHz, highHz]. The low-pass leg uses 4·rate/highHz
// taps and the drift leg a rate/lowHz-sample moving average, matching
// the batch FIR path's design choices.
func NewStreamBandPass(rate, lowHz, highHz float64) (*StreamBandPass, error) {
	if rate <= 0 || lowHz <= 0 || highHz <= lowHz {
		return nil, fmt.Errorf("sigproc: invalid streaming band [%v, %v] Hz at rate %v", lowHz, highHz, rate)
	}
	taps := int(4*rate/highHz) | 1
	h, err := FIRLowPass(taps, rate, highHz)
	if err != nil {
		return nil, err
	}
	fir, err := NewStreamFIR(h)
	if err != nil {
		return nil, err
	}
	w := int(rate/lowHz) | 1
	if w < 3 {
		w = 3
	}
	return &StreamBandPass{
		fir:  fir,
		win:  make([]float64, w),
		w:    w,
		half: w / 2,
	}, nil
}

// Delay returns the total group delay in samples: the FIR's linear
// phase delay plus half the moving-average width.
func (f *StreamBandPass) Delay() int { return f.fir.Delay() + f.half }

// Warmup returns how many samples must be pushed before outputs are
// free of start-of-stream padding transients.
func (f *StreamBandPass) Warmup() int { return len(f.fir.h) + f.w }

// Push consumes one input sample and returns the band-passed value of
// the input Delay() samples ago (zero while that index is still before
// the stream start).
//
//tagbreathe:hotpath runs once per fused bin on the streaming tick path
func (f *StreamBandPass) Push(x float64) float64 {
	lp := f.fir.Push(x)
	slot := f.idx % f.w
	f.sum += lp - f.win[slot]
	f.win[slot] = lp
	center := f.idx - f.half
	f.idx++
	if center < 0 {
		return 0
	}
	// win still holds lp[center]: the ring spans the last w values and
	// half < w.
	return f.win[center%f.w] - f.sum/float64(f.w)
}

// Rebase subtracts c from every retained sample of both stages, as if
// the input stream had been c lower all along. Post-warmup outputs are
// unchanged (the band-pass rejects DC), so the engine can keep its
// running accumulator bounded on unbounded streams.
func (f *StreamBandPass) Rebase(c float64) {
	f.fir.Rebase(c)
	for i := range f.win {
		f.win[i] -= c
	}
	f.sum -= c * float64(f.w)
}

// CrossingTracker is the incremental form of ZeroCrossings: push
// (time, value) samples in order and collect the same crossings the
// batch detector finds, including its exact-zero handling, linear
// interpolation, and minGap hysteresis against the last accepted
// crossing.
type CrossingTracker struct {
	minGap   float64
	primed   bool
	prevV    float64
	prevT    float64
	prevSign int
	lastT    float64
	hasLast  bool
}

// NewCrossingTracker builds a tracker with the given minimum spacing
// between accepted crossings (seconds).
func NewCrossingTracker(minGap float64) *CrossingTracker {
	return &CrossingTracker{minGap: minGap}
}

// Push consumes one sample and reports the zero crossing it completed,
// if any. Fed the same uniform series sample-by-sample, the sequence of
// returned crossings is identical to ZeroCrossings' output.
//
//tagbreathe:hotpath runs once per filtered bin on the streaming tick path
func (c *CrossingTracker) Push(t, v float64) (ZeroCrossing, bool) {
	if !c.primed {
		c.primed = true
		c.prevV, c.prevT, c.prevSign = v, t, sign(v)
		return ZeroCrossing{}, false
	}
	s := sign(v)
	var out ZeroCrossing
	var ok bool
	if s != 0 && c.prevSign != 0 && s != c.prevSign {
		a, b := c.prevV, v
		frac := 0.0
		if !fmath.ExactEq(a, b) {
			frac = a / (a - b)
		}
		tc := c.prevT + frac*(t-c.prevT)
		if !c.hasLast || tc-c.lastT >= c.minGap {
			out = ZeroCrossing{T: tc, Rising: s > 0}
			ok = true
			c.lastT = tc
			c.hasLast = true
		}
		c.prevSign = s
	} else if s != 0 {
		c.prevSign = s
	}
	c.prevV, c.prevT = v, t
	return out, ok
}
