package sigproc

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamFIRMatchesCausalConvolution: pushing a series through
// StreamFIR must equal the direct causal convolution with zero padding.
func TestStreamFIRMatchesCausalConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, err := FIRLowPass(31, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	f, err := NewStreamFIR(h)
	if err != nil {
		t.Fatal(err)
	}
	for n := range x {
		got := f.Push(x[n])
		var want float64
		for j := range h {
			if k := n - j; k >= 0 {
				want += h[j] * x[k]
			}
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("sample %d: stream %.15g, direct %.15g", n, got, want)
		}
	}
}

// TestStreamFIRDelay: a linear-phase FIR's output must be the input
// delayed by Delay() samples (for a smooth in-band input).
func TestStreamFIRDelay(t *testing.T) {
	rate, fc := 16.0, 0.3
	h, err := FIRLowPass(95, rate, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := NewStreamFIR(h)
	d := f.Delay()
	n := 600
	for i := 0; i < n; i++ {
		y := f.Push(math.Sin(2 * math.Pi * fc * float64(i) / rate))
		if i < 3*len(h) { // warmup
			continue
		}
		want := math.Sin(2 * math.Pi * fc * float64(i-d) / rate)
		if math.Abs(y-want) > 1e-3 {
			t.Fatalf("sample %d: delayed output %.6f, want %.6f", i, y, want)
		}
	}
}

// TestStreamBandPass: in-band sine passes at ~unity gain (delayed);
// DC and drift are rejected.
func TestStreamBandPass(t *testing.T) {
	rate := 16.0
	bp, err := NewStreamBandPass(rate, 0.05, 0.67)
	if err != nil {
		t.Fatal(err)
	}
	d := bp.Delay()
	warm := bp.Warmup()
	fc := 0.25 // breathing-band tone
	n := warm + 1200
	var worst float64
	for i := 0; i < n; i++ {
		x := 5 + 0.02*float64(i) + math.Sin(2*math.Pi*fc*float64(i)/rate)
		y := bp.Push(x)
		if i < warm+d {
			continue
		}
		want := math.Sin(2 * math.Pi * fc * float64(i-d) / rate)
		if e := math.Abs(y - want); e > worst {
			worst = e
		}
	}
	// The drift leg is a soft high-pass; a couple percent of residual
	// slope leakage is expected, but the tone must dominate.
	if worst > 0.1 {
		t.Errorf("band-pass error %.4f on offset+drift+tone input", worst)
	}
}

// TestStreamBandPassRebase: after warmup, Rebase must not change
// subsequent outputs (beyond float rounding).
func TestStreamBandPassRebase(t *testing.T) {
	rate := 16.0
	mk := func() *StreamBandPass {
		bp, err := NewStreamBandPass(rate, 0.05, 0.67)
		if err != nil {
			t.Fatal(err)
		}
		return bp
	}
	a, b := mk(), mk()
	warm := a.Warmup()
	x := func(i int) float64 {
		return 3 + math.Sin(2*math.Pi*0.2*float64(i)/rate) + 0.3*math.Cos(2*math.Pi*0.4*float64(i)/rate)
	}
	i := 0
	for ; i < warm+100; i++ {
		a.Push(x(i))
		b.Push(x(i))
	}
	b.Rebase(123.456)
	for ; i < warm+600; i++ {
		ya, yb := a.Push(x(i)), b.Push(x(i)-123.456)
		if math.Abs(ya-yb) > 1e-9 {
			t.Fatalf("sample %d: rebased output %.12g, original %.12g", i, yb, ya)
		}
	}
}

// TestCrossingTrackerMatchesBatch: feeding random band-limited series
// sample-by-sample must reproduce ZeroCrossings exactly, including
// interpolation and minGap hysteresis.
func TestCrossingTrackerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 50 + rng.Intn(400)
		rate := 4 + 28*rng.Float64()
		t0 := rng.Float64() * 10
		minGap := rng.Float64() * 0.5
		x := make([]float64, n)
		phase := rng.Float64() * 2 * math.Pi
		f := 0.1 + rng.Float64()
		for i := range x {
			x[i] = math.Sin(2*math.Pi*f*float64(i)/rate+phase) + 0.3*rng.NormFloat64()
			if rng.Intn(20) == 0 {
				x[i] = 0 // exercise exact-zero handling
			}
		}
		want := ZeroCrossings(x, t0, rate, minGap)
		tr := NewCrossingTracker(minGap)
		var got []ZeroCrossing
		for i, v := range x {
			if zc, ok := tr.Push(t0+float64(i)/rate, v); ok {
				got = append(got, zc)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: tracker found %d crossings, batch %d", trial, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].T-want[i].T) > 1e-9 || got[i].Rising != want[i].Rising {
				t.Fatalf("trial %d crossing %d: tracker %+v, batch %+v", trial, i, got[i], want[i])
			}
		}
	}
}
