package sigproc

import (
	"fmt"
	"math"
)

// WelchPSD estimates the power spectral density of x (sampled at
// sampleRate) by Welch's method: Hann-windowed segments of segmentLen
// samples with 50% overlap, periodograms averaged. It returns the
// one-sided frequency axis and PSD estimate.
//
// Welch trades frequency resolution for variance: a narrowband but
// slightly wandering line (a heartbeat with HRV) that smears across
// many bins of a full-length FFT stays within one coarse Welch bin,
// while the noise floor's variance drops with the segment count —
// which is exactly what near-floor peak detection needs.
func WelchPSD(x []float64, sampleRate float64, segmentLen int) (freqs, psd []float64, err error) {
	if sampleRate <= 0 {
		return nil, nil, fmt.Errorf("sigproc: non-positive sample rate %v", sampleRate)
	}
	if segmentLen < 8 {
		return nil, nil, fmt.Errorf("sigproc: segment length %d too short", segmentLen)
	}
	if len(x) < segmentLen {
		return nil, nil, fmt.Errorf("sigproc: series of %d samples shorter than segment %d", len(x), segmentLen)
	}
	hop := segmentLen / 2
	// Hann window and its power normalization.
	window := make([]float64, segmentLen)
	var winPower float64
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(segmentLen-1)))
		winPower += window[i] * window[i]
	}

	half := segmentLen/2 + 1
	psd = make([]float64, half)
	segments := 0
	buf := make([]complex128, segmentLen)
	for start := 0; start+segmentLen <= len(x); start += hop {
		seg := x[start : start+segmentLen]
		mean := Mean(seg)
		for i, v := range seg {
			buf[i] = complex((v-mean)*window[i], 0)
		}
		spec := FFT(buf)
		for k := 0; k < half; k++ {
			re, im := real(spec[k]), imag(spec[k])
			p := (re*re + im*im) / (winPower * sampleRate)
			if k != 0 && k != segmentLen/2 {
				p *= 2 // fold negative frequencies into the one-sided PSD
			}
			psd[k] += p
		}
		segments++
	}
	for k := range psd {
		psd[k] /= float64(segments)
	}
	freqs = make([]float64, half)
	df := sampleRate / float64(segmentLen)
	for k := range freqs {
		freqs[k] = float64(k) * df
	}
	return freqs, psd, nil
}
