package sigproc

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchPSDPeakLocation(t *testing.T) {
	const fs = 16.0
	n := int(fs * 120)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1.2 * float64(i) / fs)
	}
	freqs, psd, err := WelchPSD(x, fs, int(fs*20))
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range psd {
		if psd[i] > psd[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-1.2) > 0.06 {
		t.Errorf("Welch peak at %v Hz, want 1.2", freqs[best])
	}
}

func TestWelchPSDWanderingLineStaysInOneBin(t *testing.T) {
	// A line wandering ±4% (HRV-like): a full-length FFT smears it over
	// many bins, but Welch's coarse bins keep the peak at the mean
	// frequency.
	const fs = 16.0
	rng := rand.New(rand.NewSource(1))
	n := int(fs * 120)
	x := make([]float64, n)
	phase := 0.0
	f := 1.2
	for i := range x {
		if i%int(fs) == 0 {
			f = 1.2 * (1 + 0.04*rng.NormFloat64())
		}
		phase += 2 * math.Pi * f / fs
		x[i] = math.Sin(phase)
	}
	freqs, psd, err := WelchPSD(x, fs, int(fs*20))
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range psd {
		if psd[i] > psd[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-1.2) > 0.1 {
		t.Errorf("wandering-line Welch peak at %v Hz, want ≈1.2", freqs[best])
	}
}

func TestWelchPSDWhiteNoiseFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const fs = 16.0
	n := int(fs * 240)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	freqs, psd, err := WelchPSD(x, fs, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Average PSD of unit-variance white noise ≈ 1/fs per Hz... in
	// our normalization the total integrates to the variance. Check
	// flatness: no interior bin deviates from the median by 3×.
	med := Percentile(psd[1:len(psd)-1], 50)
	for i := 2; i < len(psd)-2; i++ {
		if psd[i] > 3.5*med || psd[i] < med/3.5 {
			t.Fatalf("bin %d (%.2f Hz) PSD %v vs median %v: not flat", i, freqs[i], psd[i], med)
		}
	}
	// Parseval-ish: integrated PSD approximates the variance.
	var total float64
	df := freqs[1] - freqs[0]
	for _, p := range psd {
		total += p * df
	}
	if total < 0.5 || total > 1.5 {
		t.Errorf("integrated PSD %v, want ≈1 (unit variance)", total)
	}
}

func TestWelchPSDValidation(t *testing.T) {
	x := make([]float64, 64)
	if _, _, err := WelchPSD(x, 0, 32); err == nil {
		t.Error("expected error for zero rate")
	}
	if _, _, err := WelchPSD(x, 16, 4); err == nil {
		t.Error("expected error for tiny segment")
	}
	if _, _, err := WelchPSD(x[:16], 16, 32); err == nil {
		t.Error("expected error for series shorter than segment")
	}
}
