package sigproc

import "tagbreathe/internal/fmath"

// ZeroCrossing records one sign change of a filtered breathing signal:
// the interpolated time at which the signal crossed zero and the
// direction of the crossing.
type ZeroCrossing struct {
	T      float64 // seconds, linearly interpolated between samples
	Rising bool    // true for a -→+ crossing (start of an inhale)
}

// ZeroCrossings detects sign changes in the uniformly sampled series x
// whose first sample is at time t0 and whose samples are spaced
// 1/sampleRate apart. Crossing times are linearly interpolated between
// the bracketing samples. Exact zeros count as part of the following
// half-cycle. A minimum spacing (hysteresis) of minGap seconds
// suppresses chatter from residual noise near zero: crossings closer
// than minGap to the previously accepted one are dropped.
//
// §IV-B of the paper detects zero crossings on the low-pass-filtered
// displacement signal and derives the instantaneous breathing rate from
// their timestamps (Eq. 5).
func ZeroCrossings(x []float64, t0, sampleRate, minGap float64) []ZeroCrossing {
	if len(x) < 2 || sampleRate <= 0 {
		return nil
	}
	dt := 1 / sampleRate
	var out []ZeroCrossing
	prevSign := sign(x[0])
	for i := 1; i < len(x); i++ {
		s := sign(x[i])
		if s == 0 || s == prevSign {
			if s != 0 {
				prevSign = s
			}
			continue
		}
		if prevSign == 0 {
			prevSign = s
			continue
		}
		// Interpolate the crossing instant between samples i-1 and i.
		a, b := x[i-1], x[i]
		frac := 0.0
		if !fmath.ExactEq(a, b) {
			frac = a / (a - b)
		}
		t := t0 + (float64(i-1)+frac)*dt
		if n := len(out); n > 0 && t-out[n-1].T < minGap {
			prevSign = s
			continue
		}
		out = append(out, ZeroCrossing{T: t, Rising: s > 0})
		prevSign = s
	}
	return out
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// RateFromCrossings implements Eq. 5: given the M most recent zero
// crossings ending at index i, the instantaneous breathing rate in Hz is
// (M−1) / (2·(t_i − t_{i−M+1})) — each full breath contributes two
// crossings. It returns the rate computed over the last bufferM
// crossings of zc, or 0 if fewer than bufferM crossings are available
// or the window spans no time. The paper buffers M = 7 crossings
// (3 breaths) for its realtime display.
func RateFromCrossings(zc []ZeroCrossing, bufferM int) float64 {
	if bufferM < 2 || len(zc) < bufferM {
		return 0
	}
	last := zc[len(zc)-1].T
	first := zc[len(zc)-bufferM].T
	span := last - first
	if span <= 0 {
		return 0
	}
	return float64(bufferM-1) / (2 * span)
}

// RateSeriesFromCrossings evaluates Eq. 5 at every crossing where a
// full buffer is available, producing the instantaneous-rate series the
// paper visualizes in realtime. Each output sample is stamped with the
// time of the newest crossing in its buffer.
func RateSeriesFromCrossings(zc []ZeroCrossing, bufferM int) []Sample {
	if bufferM < 2 || len(zc) < bufferM {
		return nil
	}
	out := make([]Sample, 0, len(zc)-bufferM+1)
	for i := bufferM; i <= len(zc); i++ {
		r := RateFromCrossings(zc[:i], bufferM)
		if r > 0 {
			out = append(out, Sample{T: zc[i-1].T, V: r})
		}
	}
	return out
}
