package sigproc

import (
	"math"
	"math/rand"
	"testing"
)

// Property-style coverage for the Eq. 5 zero-crossing estimator: for
// any clean sinusoid in the breathing band the recovered rate matches
// the generating frequency within 1%, and the estimate is invariant to
// DC offset (crossing times move, rate does not) and to amplitude
// scaling (crossing times do not move at all — linear interpolation is
// scale-free).

// offsetSine samples amp·sin(2πf·t + phase) + dc at sampleRate for
// duration seconds.
func offsetSine(freqHz, amp, dc, phase, duration, sampleRate float64) []float64 {
	n := int(duration * sampleRate)
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / sampleRate
		out[i] = amp*math.Sin(2*math.Pi*freqHz*t+phase) + dc
	}
	return out
}

// rateOver applies Eq. 5 across the crossings of x, trimmed to a
// rising-to-rising window so the span covers whole breaths. Without the
// trim a DC offset biases the finite-window estimate: the offset makes
// the rising→falling half-cycle longer than falling→rising (or vice
// versa), so a window bounded by opposite-direction crossings picks up
// a fraction of a period of error. Rising-to-rising spacing is exactly
// one period regardless of offset.
func rateOver(x []float64, sampleRate float64) float64 {
	zc := ZeroCrossings(x, 0, sampleRate, 0.1)
	for len(zc) > 0 && !zc[0].Rising {
		zc = zc[1:]
	}
	for len(zc) > 0 && !zc[len(zc)-1].Rising {
		zc = zc[:len(zc)-1]
	}
	return RateFromCrossings(zc, len(zc))
}

func TestZeroCrossingRateMatchesSineFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const sampleRate = 16.0
	const duration = 120.0
	// Breathing-band rates, Table I's 5-40 bpm span.
	for _, bpm := range []float64{5, 8, 10, 13, 20, 30, 40} {
		f := bpm / 60
		for trial := 0; trial < 5; trial++ {
			phase := rng.Float64() * 2 * math.Pi
			amp := 0.5 + rng.Float64()*10
			x := offsetSine(f, amp, 0, phase, duration, sampleRate)
			got := rateOver(x, sampleRate)
			if got <= 0 {
				t.Fatalf("bpm=%v phase=%.3f: no rate recovered", bpm, phase)
			}
			if rel := math.Abs(got-f) / f; rel > 0.01 {
				t.Errorf("bpm=%v phase=%.3f amp=%.2f: rate %.5f Hz vs true %.5f Hz (%.2f%% off)",
					bpm, phase, amp, got, f, rel*100)
			}
		}
	}
}

func TestZeroCrossingRateInvariantToDCOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const sampleRate = 16.0
	for trial := 0; trial < 20; trial++ {
		f := (5 + rng.Float64()*30) / 60
		amp := 0.5 + rng.Float64()*4
		dc := (rng.Float64()*1.6 - 0.8) * amp // |dc| < amp keeps crossings
		phase := rng.Float64() * 2 * math.Pi
		base := rateOver(offsetSine(f, amp, 0, phase, 120, sampleRate), sampleRate)
		offs := rateOver(offsetSine(f, amp, dc, phase, 120, sampleRate), sampleRate)
		if base <= 0 || offs <= 0 {
			t.Fatalf("trial %d: no rate (base %v, offset %v)", trial, base, offs)
		}
		if rel := math.Abs(offs-base) / base; rel > 0.01 {
			t.Errorf("trial %d (f=%.4f, dc=%.2f·amp): rate moved %.2f%% under DC offset",
				trial, f, dc/amp, rel*100)
		}
	}
}

func TestZeroCrossingsInvariantToAmplitudeScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const sampleRate = 16.0
	for trial := 0; trial < 20; trial++ {
		f := (5 + rng.Float64()*30) / 60
		phase := rng.Float64() * 2 * math.Pi
		scale := math.Pow(10, rng.Float64()*6-3) // 1e-3 .. 1e3
		x := offsetSine(f, 1, 0, phase, 60, sampleRate)
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = v * scale
		}
		zx := ZeroCrossings(x, 0, sampleRate, 0.1)
		zy := ZeroCrossings(y, 0, sampleRate, 0.1)
		if len(zx) == 0 || len(zx) != len(zy) {
			t.Fatalf("trial %d: crossing counts %d vs %d", trial, len(zx), len(zy))
		}
		for i := range zx {
			if zx[i].Rising != zy[i].Rising {
				t.Fatalf("trial %d: crossing %d direction changed under scaling", trial, i)
			}
			// Interpolation frac a/(a-b) is exactly scale-free; allow
			// only float rounding.
			if d := math.Abs(zx[i].T - zy[i].T); d > 1e-9 {
				t.Errorf("trial %d: crossing %d moved %g s under ×%g scaling", trial, i, d, scale)
			}
		}
	}
}
