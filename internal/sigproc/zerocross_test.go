package sigproc

import (
	"math"
	"testing"
)

func TestZeroCrossingsOfSinusoid(t *testing.T) {
	const fs = 16.0
	const f0 = 0.2 // 12 bpm: crossings every 2.5 s
	n := int(fs * 60)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	zc := ZeroCrossings(x, 0, fs, 0.4)
	// 60 s at 0.2 Hz = 12 cycles = 24 crossings (first sample is an
	// exact zero and consumed as part of the first half-cycle).
	if len(zc) < 22 || len(zc) > 24 {
		t.Fatalf("crossings = %d, want ≈23", len(zc))
	}
	// Crossings alternate direction and are spaced by half a period.
	halfPeriod := 1 / (2 * f0)
	for i := 1; i < len(zc); i++ {
		if zc[i].Rising == zc[i-1].Rising {
			t.Fatalf("crossings %d and %d have the same direction", i-1, i)
		}
		gap := zc[i].T - zc[i-1].T
		if math.Abs(gap-halfPeriod) > 0.1 {
			t.Fatalf("gap %v, want %v", gap, halfPeriod)
		}
	}
}

func TestZeroCrossingInterpolation(t *testing.T) {
	// Signal crossing zero exactly halfway between samples 1 and 2.
	x := []float64{-1, -0.5, 0.5, 1}
	zc := ZeroCrossings(x, 10, 1, 0)
	if len(zc) != 1 {
		t.Fatalf("crossings = %d, want 1", len(zc))
	}
	if math.Abs(zc[0].T-11.5) > 1e-12 {
		t.Errorf("crossing at %v, want 11.5", zc[0].T)
	}
	if !zc[0].Rising {
		t.Error("crossing should be rising")
	}
}

func TestZeroCrossingHysteresis(t *testing.T) {
	// Chatter around zero: minGap suppresses the rapid re-crossings.
	x := []float64{-1, 0.01, -0.01, 0.01, -0.01, 1}
	all := ZeroCrossings(x, 0, 10, 0)
	if len(all) != 5 {
		t.Fatalf("without hysteresis: %d crossings, want 5", len(all))
	}
	few := ZeroCrossings(x, 0, 10, 0.35)
	if len(few) != 1 {
		t.Fatalf("with hysteresis: %d crossings, want 1", len(few))
	}
}

func TestZeroCrossingsDegenerate(t *testing.T) {
	if zc := ZeroCrossings(nil, 0, 10, 0); zc != nil {
		t.Errorf("nil input: %v", zc)
	}
	if zc := ZeroCrossings([]float64{1}, 0, 10, 0); zc != nil {
		t.Errorf("single sample: %v", zc)
	}
	if zc := ZeroCrossings([]float64{1, 2, 3}, 0, 0, 0); zc != nil {
		t.Errorf("zero rate: %v", zc)
	}
	// All-positive signal: no crossings.
	if zc := ZeroCrossings([]float64{1, 2, 1, 2}, 0, 10, 0); len(zc) != 0 {
		t.Errorf("positive signal: %v", zc)
	}
	// Exact zeros between sign changes still yield one crossing.
	zc := ZeroCrossings([]float64{-1, 0, 1}, 0, 1, 0)
	if len(zc) != 1 {
		t.Errorf("zero-touching signal: %d crossings, want 1", len(zc))
	}
}

func TestRateFromCrossingsEq5(t *testing.T) {
	// Perfectly periodic crossings at 0.25 Hz breathing: crossings
	// every 2 s. Eq. 5 with M = 7: (7-1)/(2·(t_i - t_{i-6})) =
	// 6/(2·12) = 0.25 Hz.
	var zc []ZeroCrossing
	for i := 0; i < 10; i++ {
		zc = append(zc, ZeroCrossing{T: float64(i) * 2, Rising: i%2 == 0})
	}
	got := RateFromCrossings(zc, 7)
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("rate = %v Hz, want 0.25", got)
	}
}

func TestRateFromCrossingsInsufficient(t *testing.T) {
	zc := []ZeroCrossing{{T: 0}, {T: 1}, {T: 2}}
	if got := RateFromCrossings(zc, 7); got != 0 {
		t.Errorf("rate with 3 crossings, M=7: %v, want 0", got)
	}
	if got := RateFromCrossings(zc, 1); got != 0 {
		t.Errorf("rate with M=1: %v, want 0", got)
	}
	same := []ZeroCrossing{{T: 5}, {T: 5}}
	if got := RateFromCrossings(same, 2); got != 0 {
		t.Errorf("rate with zero span: %v, want 0", got)
	}
}

func TestRateSeriesFromCrossings(t *testing.T) {
	var zc []ZeroCrossing
	for i := 0; i < 12; i++ {
		zc = append(zc, ZeroCrossing{T: float64(i) * 3}) // 0.1667 Hz breath
	}
	series := RateSeriesFromCrossings(zc, 7)
	if len(series) != 12-7+1 {
		t.Fatalf("series length %d, want %d", len(series), 6)
	}
	for _, s := range series {
		if math.Abs(s.V-1.0/6) > 1e-9 {
			t.Errorf("rate %v at t=%v, want 1/6 Hz", s.V, s.T)
		}
	}
	// Stamped with the newest crossing in each buffer.
	if series[0].T != zc[6].T {
		t.Errorf("first stamp %v, want %v", series[0].T, zc[6].T)
	}
	if got := RateSeriesFromCrossings(zc[:3], 7); got != nil {
		t.Errorf("short input: %v", got)
	}
}
