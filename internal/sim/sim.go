// Package sim assembles complete monitoring scenarios — users with
// body-worn tags, contending item tags, reader antennas, and run
// parameters — and executes them against the reader emulator, yielding
// the low-level report stream plus the ground truth needed to score
// accuracy per Eq. 8. Every evaluation experiment in the paper (§VI)
// is a parameterization of this package.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tagbreathe/internal/body"
	"tagbreathe/internal/epc"
	"tagbreathe/internal/fmath"
	"tagbreathe/internal/geom"
	"tagbreathe/internal/reader"
	"tagbreathe/internal/rf"
	"tagbreathe/internal/units"
)

// PatternKind selects a breathing waveform family for a simulated user.
type PatternKind int

// Breathing pattern families.
const (
	// PatternMetronome is paced breathing, as in the paper's accuracy
	// experiments (§VI-A uses a metronome app).
	PatternMetronome PatternKind = iota + 1
	// PatternNatural is unpaced resting breathing with rate wander.
	PatternNatural
	// PatternIrregular alternates fast/slow phases with pauses.
	PatternIrregular
)

// String implements fmt.Stringer.
func (k PatternKind) String() string {
	switch k {
	case PatternMetronome:
		return "metronome"
	case PatternNatural:
		return "natural"
	case PatternIrregular:
		return "irregular"
	default:
		return fmt.Sprintf("PatternKind(%d)", int(k))
	}
}

// UserSpec describes one monitored subject.
type UserSpec struct {
	// RateBPM is the paced or mean breathing rate (Table I default 10).
	RateBPM float64
	// Pattern selects the waveform family; zero value = metronome.
	Pattern PatternKind
	// Posture (Table I default sitting).
	Posture body.Posture
	// Position of the torso reference point; zero value places the
	// user on the antenna boresight at the scenario's DefaultDistance.
	Position geom.Vec3
	// OrientationDeg rotates the user away from facing the antenna:
	// 0 = front (facing the antenna), 90 = side, 180 = back (Fig. 15).
	OrientationDeg float64
	// ChestFraction sets the breathing style (1 = chest breather,
	// 0 = abdominal); zero value defaults to 0.6.
	ChestFraction float64
	// AmplitudeM is the chest excursion amplitude in meters; zero
	// value defaults to 5 mm, typical of quiet breathing.
	AmplitudeM float64
	// HeartRateBPM adds a cardiac chest-wall component (apex beat,
	// ~0.35 mm) at this rate; zero disables it. The cardiac extension
	// estimates it from the same phase stream.
	HeartRateBPM float64
	// FidgetEverySec makes the subject shift posture (centimeters of
	// torso motion over ~1 s) at this mean interval; zero keeps the
	// subject still. Exercises the pipeline's motion-artifact
	// rejection.
	FidgetEverySec float64
	// NLOS places an obstruction (partition, furniture) between this
	// subject and the antennas — Table I's "without LOS path" case.
	// Adds obstruction loss on both link directions.
	NLOS bool
	// Sites lists tag placements; nil defaults to the paper's three
	// sites (chest, mid, abdomen).
	Sites []body.TagSite
}

// Scenario is a complete experiment configuration. The zero value is
// not runnable; start from DefaultScenario and override.
type Scenario struct {
	Users []UserSpec
	// ContendingTags adds this many RFID-labelled daily items at
	// random positions in the room (Fig. 14).
	ContendingTags int
	// Antennas lists reader antenna ports; nil defaults to one
	// antenna at the origin, 1 m above the ground (§VI-B.1).
	Antennas []reader.Antenna
	// DefaultDistance positions users with zero Position on the
	// boresight at this range in meters (Table I default 4 m).
	DefaultDistance float64
	Duration        time.Duration
	Plan            *rf.ChannelPlan
	Budget          *rf.LinkBudget
	Observer        *rf.ObserverConfig
	Link            epc.LinkParams
	AntennaDwell    time.Duration
	// SelectMonitorTags issues a Gen2 Select before inventory so only
	// the users' monitoring tags participate, excluding contending
	// item tags from arbitration entirely — the §VI-B.3 countermeasure
	// the substrate makes testable.
	SelectMonitorTags bool
	// Session selects Gen2 session semantics; the zero value (S0) is
	// the continuous-monitoring default. The session study shows why
	// persistent sessions without dual-target kill monitoring.
	Session epc.SessionConfig
	Seed    int64
}

// DefaultScenario returns Table I's default settings: one user, three
// tags, 10 bpm paced breathing, sitting, facing the antenna at 4 m,
// 30 dBm transmit power, two-minute run.
func DefaultScenario() *Scenario {
	return &Scenario{
		Users:           []UserSpec{{RateBPM: 10}},
		DefaultDistance: 4,
		Duration:        2 * time.Minute,
		Seed:            1,
	}
}

// Result carries everything a run produced.
type Result struct {
	// Reports is the full low-level read stream in timestamp order.
	Reports []reader.TagReport
	// Stats summarizes MAC-level behaviour.
	Stats reader.RunStats
	// Users are the constructed subjects, index-aligned with the
	// scenario's Users slice.
	Users []*body.User
	// UserIDs are the 64-bit identities assigned to each user.
	UserIDs []uint64
	// TrueRateBPM is the ground-truth mean breathing rate per user ID
	// over the full run — the R of Eq. 8.
	TrueRateBPM map[uint64]float64
	// TrueHeartBPM is the ground-truth mean heart rate per user ID,
	// present only for users with a cardiac component.
	TrueHeartBPM map[uint64]float64
	// TagKeys maps user ID to the physical keys of that user's tags.
	TagKeys map[uint64][]uint64
	// Antennas echoes the antenna layout used.
	Antennas []reader.Antenna
}

// nlosObstructionDB is the two-way excess loss of an office partition
// or furniture in the UHF band (one-way, applied to both directions).
const nlosObstructionDB = 9

// bodyTag adapts one body-worn tag to reader.Target.
type bodyTag struct {
	key  uint64
	code epc.EPC96
	user *body.User
	site body.TagSite
	// nlos adds obstruction loss for Table I's without-LOS case.
	nlos bool
}

// Key implements reader.Target.
func (b *bodyTag) Key() uint64 { return b.key }

// EPC implements reader.Target.
func (b *bodyTag) EPC() epc.EPC96 { return b.code }

// RangeTo implements reader.Target: geometry from the user's torso
// model plus orientation-dependent excess loss. Pattern/detuning loss
// weighs on the forward (power-up) leg — the Fig. 15b observation that
// turning collapses read rate while RSSI holds — while body blockage
// attenuates both directions and a modest fraction of the pattern loss
// reaches the return path.
func (b *bodyTag) RangeTo(antenna geom.Vec3, t float64) (float64, float64, units.DB, units.DB) {
	const h = 5e-3 // seconds; central difference step for velocity
	d0 := b.user.TagPose(b.site, t-h).Position.Distance(antenna)
	d1 := b.user.TagPose(b.site, t).Position.Distance(antenna)
	d2 := b.user.TagPose(b.site, t+h).Position.Distance(antenna)
	v := (d2 - d0) / (2 * h)
	psi := b.user.OrientationTo(antenna)
	block := body.BodyLoss(psi)
	pattern := body.TagPatternLoss(psi)
	var obstruction units.DB
	if b.nlos {
		obstruction = nlosObstructionDB
	}
	return d1, v, block + pattern + obstruction, block + 0.3*pattern + obstruction
}

// itemTag is a static contending tag on a daily item.
type itemTag struct {
	key  uint64
	code epc.EPC96
	pos  geom.Vec3
	loss units.DB
}

// Key implements reader.Target.
func (i *itemTag) Key() uint64 { return i.key }

// EPC implements reader.Target.
func (i *itemTag) EPC() epc.EPC96 { return i.code }

// RangeTo implements reader.Target.
func (i *itemTag) RangeTo(antenna geom.Vec3, _ float64) (float64, float64, units.DB, units.DB) {
	return i.pos.Distance(antenna), 0, i.loss, i.loss
}

// Interface compliance checks.
var (
	_ reader.Target = (*bodyTag)(nil)
	_ reader.Target = (*itemTag)(nil)
)

// baseUserID is the first assigned user identity. Monitoring tags carry
// user IDs at or above this value; contending item tags keep factory
// EPCs whose high bits never collide with it.
const baseUserID = 0x1000_0000_0000_0001

// Run executes the scenario and gathers all reports.
func (s *Scenario) Run() (*Result, error) {
	res := &Result{
		TrueRateBPM:  make(map[uint64]float64),
		TrueHeartBPM: make(map[uint64]float64),
		TagKeys:      make(map[uint64][]uint64),
	}
	err := s.Stream(func(r reader.TagReport) {
		res.Reports = append(res.Reports, r)
	}, res)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Stream executes the scenario, invoking emit per read in timestamp
// order. If res is non-nil its metadata fields (users, ground truth,
// stats) are filled in.
func (s *Scenario) Stream(emit func(reader.TagReport), res *Result) error {
	if len(s.Users) == 0 {
		return fmt.Errorf("sim: scenario has no users")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("sim: non-positive duration %v", s.Duration)
	}
	if s.DefaultDistance <= 0 {
		s.DefaultDistance = 4
	}
	antennas := s.Antennas
	if len(antennas) == 0 {
		// §VI-B.1: antenna fixed 1 m above the ground; boresight +X.
		antennas = []reader.Antenna{{Port: 1, Position: geom.Vec3{Z: 1.0}}}
	}

	rng := rand.New(rand.NewSource(s.Seed))
	horizon := s.Duration.Seconds()

	var targets []reader.Target
	nextKey := uint64(1)

	users := make([]*body.User, len(s.Users))
	userIDs := make([]uint64, len(s.Users))
	for i, spec := range s.Users {
		u, err := buildUser(spec, uint64(i), antennas[0].Position, s.DefaultDistance, horizon, rng)
		if err != nil {
			return fmt.Errorf("sim: user %d: %w", i, err)
		}
		users[i] = u
		userIDs[i] = u.ID

		sites := spec.Sites
		if sites == nil {
			sites = body.DefaultSites
		}
		for j, site := range sites {
			bt := &bodyTag{
				key:  nextKey,
				code: epc.NewUserTagEPC(u.ID, uint32(j+1)),
				user: u,
				site: site,
				nlos: spec.NLOS,
			}
			nextKey++
			targets = append(targets, bt)
			if res != nil {
				res.TagKeys[u.ID] = append(res.TagKeys[u.ID], bt.key)
			}
		}
	}

	for i := 0; i < s.ContendingTags; i++ {
		var code epc.EPC96
		// Factory EPCs: random bits with the top byte zeroed so the
		// user-ID space (baseUserID and above) never collides.
		for b := range code {
			code[b] = byte(rng.Intn(256))
		}
		code[0] = 0
		it := &itemTag{
			key:  nextKey,
			code: code,
			pos: geom.Vec3{
				X: 1 + 5*rng.Float64(),
				Y: -3 + 6*rng.Float64(),
				Z: 0.5 + rng.Float64(),
			},
			loss: units.DB(6 * rng.Float64()), // random mounting orientation
		}
		nextKey++
		targets = append(targets, it)
	}

	var selectFilter func(epc.EPC96) bool
	if s.SelectMonitorTags {
		monitored := make(map[uint64]bool, len(userIDs))
		for _, uid := range userIDs {
			monitored[uid] = true
		}
		selectFilter = func(e epc.EPC96) bool { return monitored[e.UserID()] }
	}
	rdr, err := reader.New(reader.Config{
		Antennas:     antennas,
		AntennaDwell: s.AntennaDwell,
		Plan:         s.Plan,
		Budget:       s.Budget,
		Observer:     s.Observer,
		Link:         s.Link,
		Select:       selectFilter,
		Session:      s.Session,
		Seed:         s.Seed + 7919, // decouple reader noise from layout draws
	}, s.Duration)
	if err != nil {
		return err
	}

	stats, err := rdr.Run(s.Duration, targets, emit)
	if err != nil {
		return err
	}

	if res != nil {
		res.Stats = stats
		res.Users = users
		res.UserIDs = userIDs
		res.Antennas = antennas
		for _, u := range users {
			res.TrueRateBPM[u.ID] = u.Breather.AverageRateBPM(0, horizon)
			if u.Heart != nil {
				res.TrueHeartBPM[u.ID] = u.Heart.AverageRateBPM(0, horizon)
			}
		}
	}
	return nil
}

// buildUser constructs the body model for one spec. Users with a zero
// Position are placed on the antenna boresight at the default distance,
// at chest height matching their posture.
func buildUser(spec UserSpec, index uint64, antennaPos geom.Vec3, defaultDistance, horizon float64, rng *rand.Rand) (*body.User, error) {
	rate := spec.RateBPM
	if rate <= 0 {
		rate = 10
	}
	amp := spec.AmplitudeM
	if amp <= 0 {
		amp = 0.005
	}
	cf := spec.ChestFraction
	if fmath.ExactZero(cf) {
		cf = 0.6
	}
	posture := spec.Posture
	if posture == 0 {
		posture = body.Sitting
	}

	var (
		br  body.Breather
		err error
	)
	switch spec.Pattern {
	case PatternNatural:
		br, err = body.NewNatural(rate, 1.5, amp, horizon, rng)
	case PatternIrregular:
		br, err = body.NewIrregular(rate*1.6, rate*0.6, amp, 6, 0.35, horizon, rng)
	default:
		br, err = body.NewMetronome(rate, amp, 0.03, horizon, rng)
	}
	if err != nil {
		return nil, err
	}

	pos := spec.Position
	if pos == (geom.Vec3{}) {
		z := chestHeight(posture)
		pos = geom.Vec3{X: antennaPos.X + defaultDistance, Y: antennaPos.Y, Z: z}
	}

	// Face the antenna, then rotate by the requested orientation.
	toAntenna := antennaPos.Sub(pos)
	facing := math.Atan2(toAntenna.Y, toAntenna.X) * 180 / math.Pi
	facing += spec.OrientationDeg

	u := &body.User{
		ID:        baseUserID + index,
		Position:  pos,
		FacingDeg: facing,
		Posture:   posture,
		Style:     body.BreathingStyle{ChestFraction: cf},
		Breather:  br,
	}
	if spec.HeartRateBPM > 0 {
		heart, err := body.NewHeartbeat(spec.HeartRateBPM, 0.00035, 0.04, horizon, rng)
		if err != nil {
			return nil, err
		}
		u.Heart = heart
	}
	if spec.FidgetEverySec > 0 {
		shifts, err := body.NewTorsoShifts(spec.FidgetEverySec, 0.06, horizon, rng)
		if err != nil {
			return nil, err
		}
		u.Shifts = shifts
	}
	return u, nil
}

// chestHeight returns the torso reference height for a posture,
// keeping the tag-to-antenna range close to the nominal distance for
// an antenna mounted 1 m above the ground.
func chestHeight(p body.Posture) float64 {
	switch p {
	case body.Standing:
		return 1.35
	case body.Lying:
		return 0.75
	default: // sitting
		return 1.1
	}
}

// SideBySide positions n users shoulder to shoulder at the given
// distance from the antenna (Fig. 13's layout), 0.6 m apart, centered
// on the boresight, all facing the antenna. It returns UserSpecs with
// the given breathing rates (cycled if fewer rates than users).
func SideBySide(n int, distance float64, ratesBPM ...float64) []UserSpec {
	if n <= 0 {
		return nil
	}
	specs := make([]UserSpec, n)
	for i := range specs {
		rate := 10.0
		if len(ratesBPM) > 0 {
			rate = ratesBPM[i%len(ratesBPM)]
		}
		y := (float64(i) - float64(n-1)/2) * 0.6
		specs[i] = UserSpec{
			RateBPM:  rate,
			Position: geom.Vec3{X: distance, Y: y, Z: 1.1},
		}
	}
	return specs
}
