package sim

import (
	"testing"
	"time"

	"tagbreathe/internal/body"
	"tagbreathe/internal/epc"
	"tagbreathe/internal/geom"
	"tagbreathe/internal/reader"
)

func shortScenario(seed int64) *Scenario {
	sc := DefaultScenario()
	sc.Duration = 10 * time.Second
	sc.Seed = seed
	return sc
}

func TestDefaultScenarioMatchesTableI(t *testing.T) {
	sc := DefaultScenario()
	if len(sc.Users) != 1 {
		t.Errorf("users = %d, want 1", len(sc.Users))
	}
	if sc.Users[0].RateBPM != 10 {
		t.Errorf("rate = %v, want 10 bpm", sc.Users[0].RateBPM)
	}
	if sc.DefaultDistance != 4 {
		t.Errorf("distance = %v, want 4 m", sc.DefaultDistance)
	}
	if sc.Duration != 2*time.Minute {
		t.Errorf("duration = %v, want 2 m", sc.Duration)
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Three tags per user (the Table I default).
	if n := len(res.TagKeys[res.UserIDs[0]]); n != 3 {
		t.Errorf("tags per user = %d, want 3", n)
	}
	// Sitting posture default.
	if res.Users[0].Posture != body.Sitting {
		t.Errorf("posture = %v, want sitting", res.Users[0].Posture)
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := &Scenario{}
	if _, err := sc.Run(); err == nil {
		t.Error("expected error for scenario with no users")
	}
	sc = DefaultScenario()
	sc.Duration = 0
	if _, err := sc.Run(); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	a, err := shortScenario(42).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := shortScenario(42).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(a.Reports), len(b.Reports))
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			t.Fatalf("same seed diverged at report %d", i)
		}
	}
	c, err := shortScenario(43).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) == len(c.Reports) {
		same := true
		for i := range a.Reports {
			if a.Reports[i] != c.Reports[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical runs")
		}
	}
}

func TestUserIDsDistinctAndEncoded(t *testing.T) {
	sc := shortScenario(1)
	sc.Users = SideBySide(4, 4, 10, 12, 14, 16)
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, uid := range res.UserIDs {
		if seen[uid] {
			t.Fatalf("duplicate user ID %x", uid)
		}
		seen[uid] = true
	}
	// Every monitoring-tag report decodes to a known user.
	for _, r := range res.Reports {
		if !seen[r.EPC.UserID()] {
			t.Fatalf("report EPC %v has unknown user ID", r.EPC)
		}
	}
}

func TestContendingTagsDoNotCollideWithUsers(t *testing.T) {
	sc := shortScenario(2)
	sc.ContendingTags = 20
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	users := map[uint64]bool{}
	for _, uid := range res.UserIDs {
		users[uid] = true
	}
	var itemReads int
	for _, r := range res.Reports {
		if !users[r.EPC.UserID()] {
			itemReads++
		}
	}
	if itemReads == 0 {
		t.Error("no contending-tag reads observed; contention not simulated")
	}
}

func TestContentionReducesMonitoringRate(t *testing.T) {
	userRate := func(contending int) float64 {
		sc := shortScenario(3)
		sc.Duration = 30 * time.Second
		sc.ContendingTags = contending
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		users := map[uint64]bool{}
		for _, uid := range res.UserIDs {
			users[uid] = true
		}
		n := 0
		for _, r := range res.Reports {
			if users[r.EPC.UserID()] {
				n++
			}
		}
		return float64(n) / 30
	}
	clear := userRate(0)
	crowded := userRate(30)
	// Fig. 14's mechanism: contending tags depress the monitoring
	// tags' read rate.
	if crowded > clear*0.6 {
		t.Errorf("monitor read rate barely fell under contention: %.1f -> %.1f", clear, crowded)
	}
}

func TestSideBySideLayout(t *testing.T) {
	specs := SideBySide(3, 4, 10, 12)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	// Rates cycle.
	if specs[0].RateBPM != 10 || specs[1].RateBPM != 12 || specs[2].RateBPM != 10 {
		t.Errorf("rates = %v, %v, %v", specs[0].RateBPM, specs[1].RateBPM, specs[2].RateBPM)
	}
	// All at distance 4 in X, spaced 0.6 m laterally, centered.
	if specs[0].Position.Y != -0.6 || specs[1].Position.Y != 0 || specs[2].Position.Y != 0.6 {
		t.Errorf("lateral positions = %v, %v, %v", specs[0].Position.Y, specs[1].Position.Y, specs[2].Position.Y)
	}
	if SideBySide(0, 4) != nil {
		t.Error("zero users should return nil")
	}
	// Default rate applies with no rates given.
	d := SideBySide(1, 4)
	if d[0].RateBPM != 10 {
		t.Errorf("default rate = %v, want 10", d[0].RateBPM)
	}
}

func TestOrientationBeyond90NoReads(t *testing.T) {
	sc := shortScenario(4)
	sc.Users[0].OrientationDeg = 150
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Errorf("%d reads with the body blocking LOS, want 0 (Fig. 15)", len(res.Reports))
	}
}

func TestGroundTruthMatchesSpec(t *testing.T) {
	sc := shortScenario(5)
	sc.Duration = time.Minute
	sc.Users[0].RateBPM = 15
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	truth := res.TrueRateBPM[res.UserIDs[0]]
	if truth < 13.5 || truth > 16.5 {
		t.Errorf("ground truth %v bpm for a 15 bpm metronome", truth)
	}
}

func TestStreamMatchesRun(t *testing.T) {
	var streamed []reader.TagReport
	sc := shortScenario(6)
	if err := sc.Stream(func(r reader.TagReport) {
		streamed = append(streamed, r)
	}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := shortScenario(6).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Reports) {
		t.Fatalf("stream %d vs run %d reports", len(streamed), len(res.Reports))
	}
	for i := range streamed {
		if streamed[i] != res.Reports[i] {
			t.Fatalf("stream and run diverge at report %d", i)
		}
	}
}

func TestExplicitAntennasAndPositions(t *testing.T) {
	sc := shortScenario(7)
	sc.Antennas = []reader.Antenna{
		{Port: 2, Position: geom.Vec3{X: 1, Y: 1, Z: 1.5}},
	}
	sc.Users[0].Position = geom.Vec3{X: 3, Y: 1, Z: 1.1}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reports {
		if r.AntennaPort != 2 {
			t.Fatalf("report from port %d, want 2", r.AntennaPort)
		}
	}
	if len(res.Reports) == 0 {
		t.Error("no reads with explicit layout")
	}
}

func TestPatternsProduceDifferentTruth(t *testing.T) {
	truthFor := func(p PatternKind) float64 {
		sc := shortScenario(8)
		sc.Duration = time.Minute
		sc.Users[0].Pattern = p
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TrueRateBPM[res.UserIDs[0]]
	}
	m := truthFor(PatternMetronome)
	n := truthFor(PatternNatural)
	ir := truthFor(PatternIrregular)
	if m == n && n == ir {
		t.Error("all patterns produced identical ground truth")
	}
	for _, v := range []float64{m, n, ir} {
		if v <= 0 || v > 40 {
			t.Errorf("implausible ground-truth rate %v", v)
		}
	}
}

func TestPatternKindString(t *testing.T) {
	if PatternMetronome.String() != "metronome" ||
		PatternNatural.String() != "natural" ||
		PatternIrregular.String() != "irregular" {
		t.Error("pattern String() mismatch")
	}
	if PatternKind(42).String() == "" {
		t.Error("unknown pattern should still print")
	}
}

func TestSelectMonitorTagsExcludesItems(t *testing.T) {
	sc := shortScenario(9)
	sc.ContendingTags = 15
	sc.SelectMonitorTags = true
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	users := map[uint64]bool{}
	for _, uid := range res.UserIDs {
		users[uid] = true
	}
	for _, r := range res.Reports {
		if !users[r.EPC.UserID()] {
			t.Fatalf("item tag %v read despite Select filter", r.EPC)
		}
	}
	if len(res.Reports) == 0 {
		t.Fatal("select filter suppressed all reads")
	}
}

func TestSessionPassthrough(t *testing.T) {
	sc := shortScenario(10)
	sc.Duration = 30 * time.Second
	sc.Session = epc.SessionConfig{Session: epc.SessionS2}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// S2 single-target: each of the three tags is read exactly once.
	if len(res.Reports) != 3 {
		t.Errorf("S2 single-target produced %d reads, want 3 (one per tag)", len(res.Reports))
	}
}

func TestNLOSReducesReads(t *testing.T) {
	clear := shortScenario(11)
	obstructed := shortScenario(11)
	obstructed.Users[0].NLOS = true
	a, err := clear.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := obstructed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Reports) >= len(a.Reports)/2 {
		t.Errorf("NLOS reads %d vs LOS %d: obstruction too cheap", len(b.Reports), len(a.Reports))
	}
	if len(b.Reports) == 0 {
		t.Error("NLOS killed the link entirely; should be degraded, not dead")
	}
}

func TestHeartRateGroundTruth(t *testing.T) {
	sc := shortScenario(12)
	sc.Duration = time.Minute
	sc.Users[0].HeartRateBPM = 75
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	truth, ok := res.TrueHeartBPM[res.UserIDs[0]]
	if !ok {
		t.Fatal("no heart-rate ground truth recorded")
	}
	if truth < 70 || truth > 80 {
		t.Errorf("heart ground truth %v, want ≈75", truth)
	}
	// Absent when no cardiac component is configured.
	plain := shortScenario(13)
	pres, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pres.TrueHeartBPM[pres.UserIDs[0]]; ok {
		t.Error("heart truth recorded for a user with no cardiac component")
	}
}
