package sim

import (
	"fmt"
	"math"
	"time"

	"tagbreathe/internal/epc"
	"tagbreathe/internal/reader"
	"tagbreathe/internal/units"
)

// Cheap user synthesis for capacity runs. The full scenario substrate
// (body models, link budget, Gen2 MAC) costs kilobytes and milliseconds
// per user — perfect for fidelity studies, hopeless for driving 10⁵–10⁶
// users through the monitor. Synth is the scale-out face of the
// simulator: per-user state is a 16-byte phase accumulator (breathing
// rate + phase offset), every report is computed closed-form in O(1)
// with no allocations, and the stream is globally timestamp-ordered the
// way a fleet of readers would deliver it. With the zero-value knobs it
// reproduces, bit for bit, the reference generator the scaling
// benchmarks have used since PR 1, so benchmark history and the
// capacity model share one generation path.

// SynthConfig parameterizes a synthetic multi-user report stream. The
// zero value of every field but Users selects the reference defaults
// (3 tags/user at 8 Hz each, 10-channel hopping, Eq. 1 phase physics at
// 4 m with 5 mm breathing excursion, rates 6–30 bpm across users).
type SynthConfig struct {
	// Users is the number of synthesized subjects (required, ≥ 1).
	Users int
	// TagsPerUser is the tag count per subject (default 3).
	TagsPerUser int
	// PerTagHz is each tag's read rate in stream time (default 8).
	PerTagHz float64
	// Channels is the hopping plan size (default 10).
	Channels int
	// DwellSec is the per-channel dwell (default 0.2 s).
	DwellSec float64
	// BaseFreqHz and ChannelStepHz lay out the channel grid
	// (defaults 920.25 MHz + 500 kHz per channel).
	BaseFreqHz    float64
	ChannelStepHz float64
	// DistanceM is the nominal tag range (default 4 m).
	DistanceM float64
	// AmplitudeM is the breathing excursion (default 5 mm).
	AmplitudeM float64
	// BaseRateBPM and RateSpreadBPM spread breathing rates across
	// users: user u breathes at BaseRateBPM + (u mod RateSpreadBPM)
	// bpm (defaults 6 and 25, i.e. 6–30 bpm).
	BaseRateBPM   float64
	RateSpreadBPM int
	// RSSIdBm is the constant reported signal strength (default −50).
	RSSIdBm float64
	// AntennaPort stamps every report (default 1).
	AntennaPort int
	// JitterFrac adds deterministic read-timing jitter: each read moves
	// by up to ±JitterFrac/2 of one stagger slot. Must be in [0, 1);
	// below 1 the global stream stays timestamp-ordered and every
	// (user, antenna) stream stays strictly monotone. Default 0.
	JitterFrac float64
	// Seed keys the jitter hash; streams with equal seeds are equal.
	Seed int64
	// FirstUserID is the first assigned user identity (default 1).
	FirstUserID uint64
}

func (c *SynthConfig) fillDefaults() {
	if c.TagsPerUser <= 0 {
		c.TagsPerUser = 3
	}
	if c.PerTagHz <= 0 {
		c.PerTagHz = 8
	}
	if c.Channels <= 0 {
		c.Channels = 10
	}
	if c.DwellSec <= 0 {
		c.DwellSec = 0.2
	}
	if c.BaseFreqHz <= 0 {
		c.BaseFreqHz = 920.25e6
	}
	if c.ChannelStepHz <= 0 {
		c.ChannelStepHz = 500e3
	}
	if c.DistanceM <= 0 {
		c.DistanceM = 4
	}
	if c.AmplitudeM <= 0 {
		c.AmplitudeM = 0.005
	}
	if c.BaseRateBPM <= 0 {
		c.BaseRateBPM = 6
	}
	if c.RateSpreadBPM <= 0 {
		c.RateSpreadBPM = 25
	}
	if c.RSSIdBm == 0 { //tagbreathe:allow floatcmp zero value means unset; exact sentinel
		c.RSSIdBm = -50
	}
	if c.AntennaPort <= 0 {
		c.AntennaPort = 1
	}
	if c.FirstUserID == 0 {
		c.FirstUserID = 1
	}
}

// synthUser is the entire per-user state: the breathing oscillator's
// rate and phase offset. 16 bytes — the property that lets one process
// hold hundreds of thousands of users and the capacity harness place
// its memory measurements on the pipeline rather than the generator.
type synthUser struct {
	rateHz float64
	phase0 float64
}

// Synth generates the multi-user report stream. Reports come out in
// global timestamp order, round-robin across users within each read
// step, exactly as a reader fleet aggregating many rooms would deliver
// them. Not safe for concurrent use; one Synth per producer goroutine.
type Synth struct {
	cfg   SynthConfig
	users []synthUser

	dt      float64 // per-tag read period
	stagger float64 // slot spacing inside one step
	jitterA float64 // jitter amplitude in seconds (≤ stagger/2)
	step    int
}

// NewSynth validates cfg and builds a generator.
func NewSynth(cfg SynthConfig) (*Synth, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("sim: synth needs at least one user, got %d", cfg.Users)
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac >= 1 {
		return nil, fmt.Errorf("sim: synth jitter fraction %v outside [0, 1)", cfg.JitterFrac)
	}
	cfg.fillDefaults()
	s := &Synth{
		cfg:   cfg,
		users: make([]synthUser, cfg.Users),
	}
	s.dt = 1 / cfg.PerTagHz
	s.stagger = s.dt / float64(cfg.Users*cfg.TagsPerUser)
	s.jitterA = cfg.JitterFrac * s.stagger / 2
	for u := range s.users {
		s.users[u] = synthUser{
			rateHz: (cfg.BaseRateBPM + float64(u%cfg.RateSpreadBPM)) / 60,
			phase0: float64(u),
		}
	}
	return s, nil
}

// Step returns the next read-step index Next will generate.
func (s *Synth) Step() int { return s.step }

// Steps returns how many read steps cover a stream duration.
func (s *Synth) Steps(d time.Duration) int {
	return int(d.Seconds() * s.cfg.PerTagHz)
}

// ReportsPerStep returns the stream fan-out of one read step.
func (s *Synth) ReportsPerStep() int { return s.cfg.Users * s.cfg.TagsPerUser }

// Reports returns the total report count for a stream duration.
func (s *Synth) Reports(d time.Duration) int {
	return s.Steps(d) * s.ReportsPerStep()
}

// Reset rewinds the generator to step 0; the regenerated stream is
// identical to the first.
func (s *Synth) Reset() { s.step = 0 }

// splitmix64 is the jitter hash: a full-avalanche mix of the slot
// coordinates, so jitter is deterministic per (seed, step, user, tag)
// without any per-user generator state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// slotJitter returns this slot's timing jitter in seconds, uniform in
// [0, 2·jitterA): a non-negative delay (reads report late, never before
// they happened) so slot 0's timestamp can never go negative, bounded
// below one stagger slot so ordering holds.
func (s *Synth) slotJitter(step, slot int) float64 {
	if s.jitterA == 0 { //tagbreathe:allow floatcmp jitterA is exactly 0 when JitterFrac is 0; exact sentinel
		return 0
	}
	h := splitmix64(uint64(s.cfg.Seed)<<32 ^ uint64(step)<<20 ^ uint64(slot))
	// Map the top 53 bits onto [0, 1).
	u := float64(h>>11) / (1 << 53)
	return 2 * u * s.jitterA
}

// ReportAt computes slot (step, user, tag) closed-form: the Eq. 1
// phase of a tag at DistanceM + AmplitudeM·sin(2π·f·t + φ₀) under the
// hopping plan, with no state beyond the 16-byte per-user oscillator.
//
//tagbreathe:hotpath runs once per generated report on the load-generator goroutine
func (s *Synth) ReportAt(step, user, tag int) reader.TagReport {
	su := &s.users[user]
	slot := user*s.cfg.TagsPerUser + tag
	t := float64(step)*s.dt + float64(slot)*s.stagger
	t += s.slotJitter(step, slot)
	ch := int(t/s.cfg.DwellSec) % s.cfg.Channels
	freq := s.cfg.BaseFreqHz + float64(ch)*s.cfg.ChannelStepHz
	lambda := 299792458.0 / freq
	d := s.cfg.DistanceM + s.cfg.AmplitudeM*math.Sin(2*math.Pi*su.rateHz*t+su.phase0)
	phase := math.Mod(2*math.Pi/lambda*2*d+1.3*float64(ch), 2*math.Pi)
	return reader.TagReport{
		EPC:          epc.NewUserTagEPC(s.cfg.FirstUserID+uint64(user), uint32(tag)+1),
		AntennaPort:  s.cfg.AntennaPort,
		ChannelIndex: ch,
		Frequency:    units.Hertz(freq),
		Timestamp:    time.Duration(t * float64(time.Second)),
		Phase:        units.Radians(phase),
		RSSI:         units.DBm(s.cfg.RSSIdBm),
	}
}

// Next appends one read step — every user's every tag, in timestamp
// order — to dst and returns it. Passing dst[:0] back in makes
// steady-state generation allocation-free.
func (s *Synth) Next(dst []reader.TagReport) []reader.TagReport {
	for u := 0; u < s.cfg.Users; u++ {
		for tag := 0; tag < s.cfg.TagsPerUser; tag++ {
			dst = append(dst, s.ReportAt(s.step, u, tag))
		}
	}
	s.step++
	return dst
}

// Generate materializes the whole stream for a duration — the batch
// benchmarks' entry point. Prefer Next for capacity runs; a
// materialized million-user stream defeats the O(bytes)-per-user point.
func (s *Synth) Generate(d time.Duration) []reader.TagReport {
	steps := s.Steps(d)
	out := make([]reader.TagReport, 0, steps*s.ReportsPerStep())
	for k := 0; k < steps; k++ {
		out = s.Next(out)
	}
	return out
}
