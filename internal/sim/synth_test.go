package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"tagbreathe/internal/epc"
	"tagbreathe/internal/reader"
	"tagbreathe/internal/units"
)

// referenceSynth is a verbatim copy of the generator the scaling
// benchmarks used from PR 1 through PR 5 (bench_test.go's
// synthMultiUserReports). It is the fixed point the Synth refactor must
// reproduce bit for bit with default knobs, so benchmark history stays
// comparable across the refactor.
func referenceSynth(users int, duration time.Duration, perTagHz float64) []reader.TagReport {
	const tagsPerUser = 3
	const nChannels = 10
	const dwell = 0.2
	dt := 1 / perTagHz
	steps := int(duration.Seconds() * perTagHz)
	stagger := dt / float64(users*tagsPerUser)
	out := make([]reader.TagReport, 0, steps*users*tagsPerUser)
	freq := func(ch int) float64 { return 920.25e6 + float64(ch)*500e3 }
	for k := 0; k < steps; k++ {
		for u := 0; u < users; u++ {
			uid := uint64(u + 1)
			rateHz := (6 + float64(u%25)) / 60 // 6-30 bpm across users
			for tag := 0; tag < tagsPerUser; tag++ {
				t := float64(k)*dt + float64(u*tagsPerUser+tag)*stagger
				ch := int(t/dwell) % nChannels
				lambda := 299792458.0 / freq(ch)
				d := 4 + 0.005*math.Sin(2*math.Pi*rateHz*t+float64(u))
				phase := math.Mod(2*math.Pi/lambda*2*d+1.3*float64(ch), 2*math.Pi)
				out = append(out, reader.TagReport{
					EPC:          epc.NewUserTagEPC(uid, uint32(tag)+1),
					AntennaPort:  1,
					ChannelIndex: ch,
					Frequency:    units.Hertz(freq(ch)),
					Timestamp:    time.Duration(t * float64(time.Second)),
					Phase:        units.Radians(phase),
					RSSI:         -50,
				})
			}
		}
	}
	return out
}

// TestSynthMatchesReferenceGenerator pins the refactor seam: default
// Synth output equals the old benchmark generator exactly — same EPCs,
// same timestamps, same phases, field for field.
func TestSynthMatchesReferenceGenerator(t *testing.T) {
	for _, tc := range []struct {
		users    int
		duration time.Duration
		hz       float64
	}{
		{1, 2 * time.Second, 8},
		{5, 3 * time.Second, 8},
		{31, 1 * time.Second, 4},
	} {
		want := referenceSynth(tc.users, tc.duration, tc.hz)
		s, err := NewSynth(SynthConfig{Users: tc.users, PerTagHz: tc.hz})
		if err != nil {
			t.Fatal(err)
		}
		got := s.Generate(tc.duration)
		if len(got) != len(want) {
			t.Fatalf("users=%d: %d reports, reference %d", tc.users, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("users=%d report %d diverged:\n got %+v\nwant %+v",
					tc.users, i, got[i], want[i])
			}
		}
	}
}

// TestSynthDeterministicAndResettable: the stream is a pure function of
// the config — regeneration after Reset, and a second Synth with the
// same config, both reproduce it exactly.
func TestSynthDeterministicAndResettable(t *testing.T) {
	cfg := SynthConfig{Users: 7, PerTagHz: 6, JitterFrac: 0.5, Seed: 99}
	s, err := NewSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Generate(2 * time.Second)
	s.Reset()
	second := s.Generate(2 * time.Second)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("Reset did not reproduce the stream")
	}
	s2, err := NewSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, s2.Generate(2*time.Second)) {
		t.Fatal("fresh Synth with equal config diverged")
	}
}

// TestSynthNextMatchesGenerate: incremental Next over a reused buffer
// concatenates to exactly the materialized stream, and steady-state
// Next calls do not allocate.
func TestSynthNextMatchesGenerate(t *testing.T) {
	cfg := SynthConfig{Users: 4, PerTagHz: 8, JitterFrac: 0.3, Seed: 5}
	s, err := NewSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Generate(2 * time.Second)
	s.Reset()
	buf := make([]reader.TagReport, 0, s.ReportsPerStep())
	var got []reader.TagReport
	for k := 0; k < s.Steps(2*time.Second); k++ {
		buf = s.Next(buf[:0])
		got = append(got, buf...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("incremental Next diverged from Generate")
	}

	allocs := testing.AllocsPerRun(200, func() {
		buf = s.Next(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("Next allocated %v times per step, want 0", allocs)
	}
}

// checkSynthStream asserts the stream invariants every consumer relies
// on: global timestamp order (monitor ingest contract), strictly
// monotone timestamps per (user, antenna), and EPC stability (each
// (user, tag) slot carries one EPC forever).
func checkSynthStream(t *testing.T, s *Synth, reports []reader.TagReport) {
	t.Helper()
	type ua struct {
		user    uint64
		antenna int
	}
	lastUA := make(map[ua]time.Duration)
	epcSlot := make(map[uint64]epc.EPC96) // user<<8|tag → EPC
	var lastGlobal time.Duration = -1
	for i, r := range reports {
		if r.Timestamp < lastGlobal {
			t.Fatalf("report %d: global timestamp order broken: %v after %v",
				i, r.Timestamp, lastGlobal)
		}
		lastGlobal = r.Timestamp
		k := ua{r.EPC.UserID(), r.AntennaPort}
		if prev, ok := lastUA[k]; ok && r.Timestamp <= prev {
			t.Fatalf("report %d: (user %x, antenna %d) timestamp %v not after %v",
				i, k.user, k.antenna, r.Timestamp, prev)
		}
		lastUA[k] = r.Timestamp
		slot := k.user<<8 | uint64(r.EPC.TagID())
		if prev, ok := epcSlot[slot]; ok {
			if prev != r.EPC {
				t.Fatalf("report %d: slot (user %x, tag %d) changed EPC", i, k.user, r.EPC.TagID())
			}
		} else {
			epcSlot[slot] = r.EPC
		}
	}
	if len(reports) > 0 {
		if want := len(epcSlot); want != s.ReportsPerStep() {
			t.Fatalf("saw %d distinct EPCs, want %d", want, s.ReportsPerStep())
		}
	}
}

// TestSynthStreamInvariants runs the invariant suite over jittered and
// unjittered configs.
func TestSynthStreamInvariants(t *testing.T) {
	for _, jitter := range []float64{0, 0.25, 0.99} {
		s, err := NewSynth(SynthConfig{Users: 9, TagsPerUser: 2, PerTagHz: 12,
			JitterFrac: jitter, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		checkSynthStream(t, s, s.Generate(3*time.Second))
	}
}

// TestSynthRejectsBadConfig: user counts and jitter fractions outside
// the contract fail loudly rather than generating broken streams.
func TestSynthRejectsBadConfig(t *testing.T) {
	if _, err := NewSynth(SynthConfig{Users: 0}); err == nil {
		t.Error("no error for zero users")
	}
	if _, err := NewSynth(SynthConfig{Users: 1, JitterFrac: 1}); err == nil {
		t.Error("no error for jitter fraction 1 (breaks global order)")
	}
	if _, err := NewSynth(SynthConfig{Users: 1, JitterFrac: -0.1}); err == nil {
		t.Error("no error for negative jitter")
	}
}

// FuzzSynthStream fuzzes the generator's phase/rate/jitter inputs and
// asserts the stream invariants hold for every accepted configuration —
// the property gate for the O(bytes) user synthesis.
func FuzzSynthStream(f *testing.F) {
	f.Add(3, 3, 8.0, 0.0, int64(1), 10.0, 25)
	f.Add(17, 1, 2.0, 0.5, int64(7), 6.0, 3)
	f.Add(2, 4, 16.0, 0.99, int64(-3), 30.0, 1)
	f.Fuzz(func(t *testing.T, users, tags int, hz, jitter float64, seed int64,
		baseBPM float64, spread int) {
		if users < 1 || users > 32 || tags < 1 || tags > 4 {
			t.Skip()
		}
		if hz <= 0.5 || hz > 64 || math.IsNaN(hz) {
			t.Skip()
		}
		if jitter < 0 || jitter >= 1 || math.IsNaN(jitter) {
			t.Skip()
		}
		if baseBPM <= 0 || baseBPM > 60 || math.IsNaN(baseBPM) || spread < 1 || spread > 60 {
			t.Skip()
		}
		cfg := SynthConfig{
			Users: users, TagsPerUser: tags, PerTagHz: hz,
			JitterFrac: jitter, Seed: seed,
			BaseRateBPM: baseBPM, RateSpreadBPM: spread,
		}
		s, err := NewSynth(cfg)
		if err != nil {
			t.Fatalf("config rejected: %v", err)
		}
		reports := s.Generate(time.Second)
		if want := s.Reports(time.Second); len(reports) != want {
			t.Fatalf("generated %d reports, want %d", len(reports), want)
		}
		checkSynthStream(t, s, reports)

		// Determinism under fuzzed inputs: same config, same stream.
		s2, _ := NewSynth(cfg)
		if !reflect.DeepEqual(reports, s2.Generate(time.Second)) {
			t.Fatal("fuzzed config not deterministic")
		}
	})
}
