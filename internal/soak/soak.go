// Package soak drives long-horizon end-to-end runs of the full
// pipeline — simulated ward → paced LLRP servers → fault proxies →
// reader fleet → monitor — and reports whether the system degraded
// gracefully. A soak loops a jittered chaos schedule (latency spikes,
// silent stalls, disconnects, corrupt frames) against a multi-user,
// multi-reader fleet for the bulk of the run, then ends with a
// fault-free calm tail. The interesting assertions are the ones a
// single scripted pass cannot make: memory and goroutines stay
// bounded, per-user estimates never diverge from ground truth, and
// the degradation ladder both engages under the injected bursts and
// fully clears once they stop (DESIGN.md §13).
//
// Profiles pace the same scenario at different stream-to-wall ratios:
// Compressed is the CI smoke profile (~a minute of wall clock for
// tens of minutes of stream), Realtime the manual/nightly profile.
// Run returns a Result; Result.Verify yields the violated invariants,
// so tests and the experiments CLI share one set of pass criteria.
package soak

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tagbreathe/internal/chaos"
	"tagbreathe/internal/core"
	"tagbreathe/internal/fleet"
	"tagbreathe/internal/llrp"
	"tagbreathe/internal/reader"
	"tagbreathe/internal/sim"
)

// Profile shapes one soak run. Durations denominated in stream time
// scale with Speed, so the same schedule stresses the same pipeline
// mechanics whether compressed or realtime.
type Profile struct {
	// Name labels the profile in results and logs.
	Name string
	// StreamDuration is the stream time the run covers end to end.
	StreamDuration time.Duration
	// Speed is the stream-to-wall ratio (1 = realtime).
	Speed float64
	// Users is how many monitored users breathe in the ward.
	Users int
	// Readers is how many readers cover the ward, each behind its own
	// fault proxy.
	Readers int
	// Seed derives the scenario and the per-proxy jitter streams.
	Seed int64
	// Jitter randomizes the chaos schedules pass to pass (see
	// chaos.Loop.Jitter).
	Jitter float64
	// StallStream is how much stream time the big per-pass stall
	// withholds — from every reader at once, so stream time itself
	// pauses. The release replays the retained backlog as a flood
	// whose timestamps drive the analysis ticks, which is what makes
	// the queue deep at tick broadcast and pushes the monitor onto
	// the degradation ladder. (A single reader's stall cannot: the
	// surviving readers keep stream time current, so the stale burst
	// drains invisibly between ticks.)
	StallStream time.Duration
	// CalmTail is the fault-free stream time at the end of the run;
	// by its close the ladder must have fully cleared.
	CalmTail time.Duration
	// ShardQueue and MaxStretch configure the monitor under test.
	ShardQueue int
	MaxStretch int
}

// Compressed is the CI smoke profile: ~25 minutes of stream in under
// a minute of wall clock, four-plus chaos passes, then a calm tail.
func Compressed() Profile {
	return Profile{
		Name:           "compressed",
		StreamDuration: 25 * time.Minute,
		Speed:          30,
		Users:          2,
		Readers:        2,
		Seed:           1,
		Jitter:         0.2,
		StallStream:    18 * time.Second,
		CalmTail:       150 * time.Second,
		ShardQueue:     256,
		MaxStretch:     8,
	}
}

// Realtime is the manual/nightly profile: the same schedule shape at
// 1× pacing for an hour. Not part of the CI tier — see the Makefile's
// soak targets.
func Realtime() Profile {
	return Profile{
		Name:           "realtime",
		StreamDuration: time.Hour,
		Speed:          1,
		Users:          2,
		Readers:        2,
		Seed:           1,
		Jitter:         0.3,
		StallStream:    18 * time.Second,
		CalmTail:       5 * time.Minute,
		ShardQueue:     256,
		MaxStretch:     8,
	}
}

// wall converts a stream duration to wall clock under the profile.
func (p Profile) wall(stream time.Duration) time.Duration {
	return time.Duration(float64(stream) / p.Speed)
}

// UserOutcome is one user's soak verdict.
type UserOutcome struct {
	UserID   uint64
	TruthBPM float64
	// FinalBPM is the last estimate of the run — delivered during the
	// calm tail, so it must be back on truth.
	FinalBPM float64
	// Updates counts post-warmup estimate deliveries.
	Updates int
	// MaxGapS is the longest stream-time silence between consecutive
	// post-warmup updates — the blackout a ward display would show.
	// Judged against Result.GapLimitS.
	MaxGapS float64
	// OutOfBand counts post-warmup updates outside the plausible
	// breathing band (4–40 bpm). A handful of transition-window blips
	// (fault onset, vantage failover) are tolerated; anything more is
	// estimate divergence.
	OutOfBand int
	// FinalStretch and FinalDegraded are the last update's degradation
	// stamp; a cleared ladder reports 1 and false.
	FinalStretch  int
	FinalDegraded bool
}

// Result is everything a soak run measured.
type Result struct {
	Profile       string
	WallSeconds   float64
	StreamSeconds float64
	Users         []UserOutcome
	// GapLimitS is the profile's update-blackout budget: a 30 s base
	// (window + finality horizon) plus the all-reader stall, during
	// which no estimate can possibly be produced.
	GapLimitS float64
	// PeakStretch is the highest ladder rung any worker reached; a
	// soak whose bursts never engage the ladder proves nothing.
	PeakStretch  int
	SkippedTicks uint64
	// DegradedAtEnd is DegradedWorkers at the end of the calm tail.
	DegradedAtEnd int
	// MonitorShed and FleetShed are the per-class shed totals at the
	// demux and the fleet merge respectively.
	MonitorShed map[string]uint64
	FleetShed   map[string]uint64
	// Conns and Reconnects total across all proxies/readers.
	Conns      uint64
	Reconnects uint64
	// GoroutineBaseline and GoroutineEnd bracket the run; End above
	// Baseline after teardown is a leak.
	GoroutineBaseline int
	GoroutineEnd      int
	// HeapEarlyBytes and HeapLateBytes are post-GC heap sizes just
	// after warmup and at the end of the run.
	HeapEarlyBytes uint64
	HeapLateBytes  uint64
}

// heapSlackBytes is the allowed post-GC heap growth across the run.
const heapSlackBytes = 64 << 20

// Verify returns the soak invariants the result violates; empty means
// the run degraded gracefully end to end.
func (r Result) Verify() []string {
	var v []string
	for _, u := range r.Users {
		if u.Updates == 0 {
			v = append(v, fmt.Sprintf("user %d: no post-warmup updates", u.UserID))
			continue
		}
		if u.FinalBPM < u.TruthBPM-2.5 || u.FinalBPM > u.TruthBPM+2.5 {
			v = append(v, fmt.Sprintf("user %d: final estimate %.2f bpm diverged from truth %.2f ± 2.5", u.UserID, u.FinalBPM, u.TruthBPM))
		}
		if blips := 2 + u.Updates/200; u.OutOfBand > blips {
			v = append(v, fmt.Sprintf("user %d: %d/%d updates left the plausible breathing band (tolerance %d)", u.UserID, u.OutOfBand, u.Updates, blips))
		}
		if u.MaxGapS > r.GapLimitS {
			v = append(v, fmt.Sprintf("user %d: %.1f s stream-time update blackout (limit %.0f s)", u.UserID, u.MaxGapS, r.GapLimitS))
		}
		if u.FinalStretch != 1 || u.FinalDegraded {
			v = append(v, fmt.Sprintf("user %d: final update still degraded (stretch %d)", u.UserID, u.FinalStretch))
		}
	}
	if r.PeakStretch < 2 {
		v = append(v, "degradation ladder never engaged (peak stretch 1) — the soak exercised nothing")
	}
	if r.DegradedAtEnd != 0 {
		v = append(v, fmt.Sprintf("%d workers still degraded after the calm tail", r.DegradedAtEnd))
	}
	if r.HeapLateBytes > r.HeapEarlyBytes+heapSlackBytes {
		v = append(v, fmt.Sprintf("heap grew %d → %d bytes (slack %d)", r.HeapEarlyBytes, r.HeapLateBytes, uint64(heapSlackBytes)))
	}
	if r.GoroutineEnd > r.GoroutineBaseline {
		v = append(v, fmt.Sprintf("goroutines leaked: %d after teardown, baseline %d", r.GoroutineEnd, r.GoroutineBaseline))
	}
	return v
}

// Run executes one soak profile end to end and measures it. Setup and
// infrastructure failures return an error; invariant violations are
// the caller's to judge via Result.Verify.
func Run(ctx context.Context, p Profile) (Result, error) {
	// Ward scenario: Users breathers side by side at distinct rates, a
	// minute of trace slack past the run's end so the replay never
	// exhausts mid-run.
	rates := make([]float64, p.Users)
	pool := []float64{10, 16, 13, 19, 22, 8}
	for i := range rates {
		rates[i] = pool[i%len(pool)]
	}
	sc := sim.DefaultScenario()
	sc.Duration = p.StreamDuration + time.Minute
	sc.Seed = p.Seed
	sc.Users = sim.SideBySide(p.Users, 4, rates...)
	res, err := sc.Run()
	if err != nil {
		return Result{}, fmt.Errorf("soak: scenario: %w", err)
	}

	// One independent replay per reader, each behind its own fault
	// proxy. The replay retains StallStream of backlog across stalls
	// and outages, so fault recovery arrives as a burst — the way a
	// buffering reader replays reports after a link wedge.
	stallWall := p.wall(p.StallStream)
	sources := make([]*pacedSource, p.Readers)
	proxies := make([]*chaos.Proxy, p.Readers)
	readers := make([]fleet.ReaderConfig, p.Readers)
	for i := range sources {
		src := &pacedSource{reports: res.Reports, speed: p.Speed, slack: 2 * stallWall}
		srv, err := llrp.NewServer(llrp.ServerConfig{
			NewSource:      func() llrp.ReportSource { return llrp.ReportSourceFunc(src.stream) },
			KeepaliveEvery: 50 * time.Millisecond,
		})
		if err != nil {
			return Result{}, fmt.Errorf("soak: server %d: %w", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Result{}, fmt.Errorf("soak: listen %d: %w", i, err)
		}
		serveDone := make(chan struct{})
		go func() {
			defer close(serveDone)
			_ = srv.Serve(ln)
		}()
		defer func() {
			srv.Close()
			<-serveDone
		}()
		proxy, err := chaos.NewProxy(ln.Addr().String())
		if err != nil {
			return Result{}, fmt.Errorf("soak: proxy %d: %w", i, err)
		}
		defer proxy.Close()
		sources[i] = src
		proxies[i] = proxy
		readers[i] = fleet.ReaderConfig{Name: fmt.Sprintf("r%d", i), Addr: proxy.Addr()}
	}

	time.Sleep(50 * time.Millisecond) // let startup goroutines settle
	baseline := runtime.NumGoroutine()

	mon := core.NewMonitor(core.MonitorConfig{
		Pipeline:     core.Config{Users: res.UserIDs, Filter: core.FilterFIRStreaming},
		Window:       25 * time.Second,
		UpdateEvery:  time.Second,
		ShardWorkers: 2,
		ShardQueue:   p.ShardQueue,
		Overload:     core.OverloadDropNewest,
		Degrade:      core.DegradeConfig{MaxStretch: p.MaxStretch},
	})
	start := time.Now()
	for _, src := range sources {
		src.start = start
	}
	f, err := fleet.Start(ctx, fleet.Config{
		Readers: readers,
		Session: llrp.SessionConfig{
			ROSpec:      llrp.ROSpecConfig{ROSpecID: 1, ReportEveryN: 8},
			DialTimeout: 2 * time.Second,
			BackoffMin:  5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			Watchdog:    3 * stallWall,
		},
		ShedClass: func(r reader.TagReport) core.ShedClass {
			return mon.VantageClass(r.EPC.UserID(), r.ReaderID, r.AntennaPort)
		},
	})
	if err != nil {
		mon.Stop()
		return Result{}, fmt.Errorf("soak: fleet: %w", err)
	}
	defer f.Close()

	var pumps sync.WaitGroup
	pumps.Add(1)
	go func() {
		defer pumps.Done()
		for r := range f.Reports() {
			mon.Ingest(r)
		}
		mon.CloseInput()
	}()

	// The update consumer tracks each user's warmup, cadence gaps,
	// band violations, and final stamp.
	type track struct {
		truth   float64
		warm    bool
		updates int
		lastT   time.Duration
		maxGap  time.Duration
		outBand int
		last    core.RateUpdate
	}
	var mu sync.Mutex
	tracks := make(map[uint64]*track, len(res.UserIDs))
	for _, uid := range res.UserIDs {
		tracks[uid] = &track{truth: res.TrueRateBPM[uid]}
	}
	pumps.Add(1)
	go func() {
		defer pumps.Done()
		for u := range mon.Updates() {
			mu.Lock()
			tr := tracks[u.UserID]
			if tr == nil {
				mu.Unlock()
				continue
			}
			if !tr.warm {
				// Warm once the estimate first locks onto truth; the
				// continuous checks only judge the run from there.
				if u.Reads > 0 && u.RateBPM > tr.truth-2.5 && u.RateBPM < tr.truth+2.5 {
					tr.warm = true
					tr.lastT = u.Time
				}
				mu.Unlock()
				continue
			}
			tr.updates++
			if u.RateBPM < 4 || u.RateBPM > 40 {
				tr.outBand++
			}
			if gap := u.Time - tr.lastT; gap > tr.maxGap {
				tr.maxGap = gap
			}
			tr.lastT = u.Time
			tr.last = u
			mu.Unlock()
		}
	}()

	// Phase 1 — warmup: every user locked on before the faults start.
	allWarm := func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, tr := range tracks {
			if !tr.warm {
				return false
			}
		}
		return true
	}
	warmDeadline := start.Add(p.wall(2*time.Minute) + 10*time.Second)
	for !allWarm() {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if time.Now().After(warmDeadline) {
			return Result{}, fmt.Errorf("soak: warmup incomplete after %v (fleet %+v)", time.Since(start), f.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}
	heapEarly := heapInUse()

	// Phase 2 — chaos: loop a jittered schedule per proxy until the
	// calm tail begins. Reader 0 takes the full fault menu; the others
	// a lighter, phase-shifted one, so outages overlap but never
	// silence the whole fleet by construction.
	wallEnd := start.Add(p.wall(p.StreamDuration))
	calmStart := wallEnd.Add(-p.wall(p.CalmTail))
	scriptCtx, cancelScripts := context.WithDeadline(ctx, calmStart)
	defer cancelScripts()
	var scripts sync.WaitGroup
	for i, proxy := range proxies {
		steps := lightSchedule(p, stallWall)
		if i == 0 {
			steps = fullSchedule(p, stallWall, proxies)
		}
		scripts.Add(1)
		go func(i int, proxy *chaos.Proxy, steps []chaos.Step) {
			defer scripts.Done()
			_ = proxy.RunScriptLoop(scriptCtx, steps, chaos.Loop{
				Jitter: p.Jitter,
				Seed:   p.Seed + int64(i) + 1,
			})
		}(i, proxy, steps)
	}
	scripts.Wait()
	// A cancelled script can leave a latency spike armed; the calm
	// tail must be genuinely fault-free.
	for _, proxy := range proxies {
		proxy.SetLatency(0)
	}

	// Phase 3 — calm tail, then measure before teardown.
	sleepUntil(ctx, wallEnd)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	for _, src := range sources {
		if src.exhausted() {
			return Result{}, fmt.Errorf("soak: trace exhausted before the run ended — lengthen StreamDuration slack")
		}
	}

	r := Result{
		Profile:           p.Name,
		WallSeconds:       time.Since(start).Seconds(),
		StreamSeconds:     (time.Duration(float64(time.Since(start)) * p.Speed)).Seconds(),
		GapLimitS:         30 + p.StallStream.Seconds(),
		PeakStretch:       mon.PeakTickStretch(),
		SkippedTicks:      mon.SkippedTicks(),
		DegradedAtEnd:     mon.DegradedWorkers(),
		MonitorShed:       mon.ShedByClass(),
		FleetShed:         map[string]uint64{},
		GoroutineBaseline: baseline,
		HeapEarlyBytes:    heapEarly,
		HeapLateBytes:     heapInUse(),
	}
	for _, proxy := range proxies {
		r.Conns += proxy.TotalConns()
	}
	for _, s := range f.Status() {
		r.Reconnects += s.Reconnects
		for cls, n := range s.ShedByClass {
			r.FleetShed[cls] += n
		}
	}
	mu.Lock()
	for _, uid := range res.UserIDs {
		tr := tracks[uid]
		r.Users = append(r.Users, UserOutcome{
			UserID:        uid,
			TruthBPM:      tr.truth,
			FinalBPM:      tr.last.RateBPM,
			Updates:       tr.updates,
			MaxGapS:       tr.maxGap.Seconds(),
			OutOfBand:     tr.outBand,
			FinalStretch:  tr.last.TickStretch,
			FinalDegraded: tr.last.Degraded,
		})
	}
	mu.Unlock()

	// Teardown must cascade — fleet, pumps, monitor — and return the
	// goroutine count to the pre-fleet baseline.
	f.Close()
	pumps.Wait()
	mon.Stop()
	leakDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	r.GoroutineEnd = runtime.NumGoroutine()
	return r, nil
}

// fullSchedule is one chaos pass for the coordinating script (run on
// reader 0's proxy): a latency spike, the all-reader stall — stream
// time pauses, and the synchronized release flood is the overload
// impulse that engages the ladder — a disconnect, corrupt frames, and
// a calm pad. Pauses are stream-denominated so the pass covers the
// same stream ground at any speed.
func fullSchedule(p Profile, stallWall time.Duration, proxies []*chaos.Proxy) []chaos.Step {
	return []chaos.Step{
		{After: p.wall(60 * time.Second), Act: func(px *chaos.Proxy) { px.SetLatency(p.wall(500 * time.Millisecond)) }},
		{After: p.wall(30 * time.Second), Act: func(px *chaos.Proxy) { px.SetLatency(0) }},
		{After: p.wall(30 * time.Second), Act: func(*chaos.Proxy) {
			for _, px := range proxies {
				px.StallFor(stallWall)
			}
		}},
		{After: p.wall(60 * time.Second), Act: func(px *chaos.Proxy) { px.Disconnect() }},
		{After: p.wall(30 * time.Second), Act: func(px *chaos.Proxy) { px.CorruptNext(256) }},
		{After: p.wall(60 * time.Second)},
	}
}

// lightSchedule is the phase-shifted pass for the remaining readers:
// a disconnect and a half-size stall per pass.
func lightSchedule(p Profile, stallWall time.Duration) []chaos.Step {
	return []chaos.Step{
		{After: p.wall(150 * time.Second), Act: func(px *chaos.Proxy) { px.Disconnect() }},
		{After: p.wall(90 * time.Second), Act: func(px *chaos.Proxy) { px.StallFor(stallWall / 2) }},
		{After: p.wall(120 * time.Second)},
	}
}

// heapInUse returns the post-GC live heap.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// sleepUntil sleeps to the deadline unless ctx ends first.
func sleepUntil(ctx context.Context, deadline time.Time) {
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// pacedSource replays a recorded trace against a shared wall-clock
// origin at speed× realtime. The emit cursor is shared across
// (re)connections, so a reconnecting session resumes where the stream
// left off; reports up to slack late are still emitted — the retained
// backlog a buffering reader replays after a stall, and the burst the
// soak's overload assertions rely on — while anything older is lost,
// as a live reader's reads would be.
type pacedSource struct {
	reports []reader.TagReport
	speed   float64
	start   time.Time
	slack   time.Duration
	next    atomic.Int64
}

func (p *pacedSource) exhausted() bool {
	return p.next.Load() >= int64(len(p.reports))
}

func (p *pacedSource) stream(ctx context.Context, emit func(reader.TagReport) error) error {
	for {
		i := p.next.Add(1) - 1
		if i >= int64(len(p.reports)) {
			return nil
		}
		r := p.reports[i]
		due := p.start.Add(time.Duration(float64(r.Timestamp) / p.speed))
		d := time.Until(due)
		if d < -p.slack {
			continue // fell due during an outage longer than the retention buffer; lost
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if err := emit(r); err != nil {
			return err
		}
	}
}
