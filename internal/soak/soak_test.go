package soak_test

import (
	"context"
	"os"
	"testing"
	"time"

	"tagbreathe/internal/soak"
)

// TestSoakCompressed is the CI smoke soak: the compressed profile —
// tens of minutes of stream under a minute of wall clock — must pass
// every graceful-degradation invariant under the race detector. Set
// TAGBREATHE_SOAK=realtime to run the manual/nightly 1× profile
// instead (allow over an hour; see `make soak-full`).
func TestSoakCompressed(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	p := soak.Compressed()
	if os.Getenv("TAGBREATHE_SOAK") == "realtime" {
		p = soak.Realtime()
	}
	wall := time.Duration(float64(p.StreamDuration) / p.Speed)
	ctx, cancel := context.WithTimeout(context.Background(), wall+3*time.Minute)
	defer cancel()

	res, err := soak.Run(ctx, p)
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	for _, violation := range res.Verify() {
		t.Error(violation)
	}
	t.Logf("%s soak: %.0f s stream in %.0f s wall, peak stretch %d, skipped ticks %d, conns %d, reconnects %d",
		res.Profile, res.StreamSeconds, res.WallSeconds, res.PeakStretch, res.SkippedTicks, res.Conns, res.Reconnects)
	t.Logf("shed by class: monitor %v, fleet %v; heap %d → %d bytes",
		res.MonitorShed, res.FleetShed, res.HeapEarlyBytes, res.HeapLateBytes)
	for _, u := range res.Users {
		t.Logf("user %d: truth %.1f final %.2f bpm, %d updates, max gap %.1f s, stretch %d",
			u.UserID, u.TruthBPM, u.FinalBPM, u.Updates, u.MaxGapS, u.FinalStretch)
	}

	// Nightly trend capture: append this run's summary row to the
	// checked-in history when asked (see BENCH_soak_trend.json and the
	// nightly-soak workflow).
	if path := os.Getenv("TAGBREATHE_SOAK_TREND"); path != "" {
		if err := soak.AppendTrend(path, soak.NewTrendEntry(res, time.Now())); err != nil {
			t.Errorf("appending soak trend: %v", err)
		} else {
			t.Logf("soak trend appended to %s", path)
		}
	}
}
