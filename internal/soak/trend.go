package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Trend capture: the nightly soak appends one summary row per run to a
// checked-in JSON array (BENCH_soak_trend.json), so a slow regression
// in degradation behaviour — peak stretch creeping up, shed counts
// growing, heap drifting — shows as a trend across commits instead of
// a single pass/fail bit. The file is the database: no external
// storage, diffable in review, and the nightly workflow commits the
// appended row back to the branch.

// TrendEntry is one soak run's summary row.
type TrendEntry struct {
	// Time is the run's completion time, RFC 3339 UTC.
	Time    string `json:"time"`
	Profile string `json:"profile"`
	// Commit is the git revision the run tested (empty when unknown —
	// local runs; the nightly workflow sets it from GITHUB_SHA).
	Commit        string  `json:"commit,omitempty"`
	StreamSeconds float64 `json:"stream_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	// The degradation trend proper: ladder peak, skipped analysis
	// ticks, and shed-by-class totals at both shedding sites.
	PeakStretch  int               `json:"peak_stretch"`
	SkippedTicks uint64            `json:"skipped_ticks"`
	MonitorShed  map[string]uint64 `json:"monitor_shed,omitempty"`
	FleetShed    map[string]uint64 `json:"fleet_shed,omitempty"`
	// Transport churn and memory drift.
	Conns          uint64 `json:"conns"`
	Reconnects     uint64 `json:"reconnects"`
	HeapEarlyBytes uint64 `json:"heap_early_bytes"`
	HeapLateBytes  uint64 `json:"heap_late_bytes"`
	// MaxUserGapS is the worst post-warmup update blackout any user
	// saw, against the profile's GapLimitS budget.
	MaxUserGapS float64 `json:"max_user_gap_s"`
	GapLimitS   float64 `json:"gap_limit_s"`
	// Violations counts failed soak invariants (0 on a green run; the
	// nightly appends the row either way so a red night is visible in
	// the trend, not just in the workflow log).
	Violations int `json:"violations"`
}

// NewTrendEntry summarizes a soak result as a trend row.
func NewTrendEntry(r Result, when time.Time) TrendEntry {
	maxGap := 0.0
	for _, u := range r.Users {
		if u.MaxGapS > maxGap {
			maxGap = u.MaxGapS
		}
	}
	return TrendEntry{
		Time:           when.UTC().Format(time.RFC3339),
		Profile:        r.Profile,
		Commit:         os.Getenv("TAGBREATHE_SOAK_COMMIT"),
		StreamSeconds:  r.StreamSeconds,
		WallSeconds:    r.WallSeconds,
		PeakStretch:    r.PeakStretch,
		SkippedTicks:   r.SkippedTicks,
		MonitorShed:    r.MonitorShed,
		FleetShed:      r.FleetShed,
		Conns:          r.Conns,
		Reconnects:     r.Reconnects,
		HeapEarlyBytes: r.HeapEarlyBytes,
		HeapLateBytes:  r.HeapLateBytes,
		MaxUserGapS:    maxGap,
		GapLimitS:      r.GapLimitS,
		Violations:     len(r.Verify()),
	}
}

// AppendTrend appends one row to the JSON array at path, creating the
// file if needed. The write is atomic (temp file + rename) so a
// crashed run cannot corrupt the history, and a malformed existing
// file is an error, not a silent restart of the trend.
func AppendTrend(path string, e TrendEntry) error {
	var rows []TrendEntry
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &rows); err != nil {
			return fmt.Errorf("soak: trend file %s is not a JSON array: %w", path, err)
		}
	case os.IsNotExist(err):
		// First run: start the array.
	default:
		return fmt.Errorf("soak: reading trend file: %w", err)
	}
	rows = append(rows, e)
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Errorf("soak: encoding trend: %w", err)
	}
	out = append(out, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".trend-*")
	if err != nil {
		return fmt.Errorf("soak: writing trend: %w", err)
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("soak: writing trend: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("soak: writing trend: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("soak: writing trend: %w", err)
	}
	return nil
}
