package soak_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tagbreathe/internal/soak"
)

func TestAppendTrend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")
	res := soak.Result{
		Profile:       "compressed",
		StreamSeconds: 2400,
		WallSeconds:   60,
		PeakStretch:   4,
		SkippedTicks:  100,
		MonitorShed:   map[string]uint64{"redundant": 7},
		Users:         []soak.UserOutcome{{MaxGapS: 12.5}, {MaxGapS: 30.25}},
		GapLimitS:     45,
	}
	e := soak.NewTrendEntry(res, time.Date(2026, 8, 8, 3, 0, 0, 0, time.UTC))
	if e.MaxUserGapS != 30.25 {
		t.Errorf("MaxUserGapS = %v, want the worst user's 30.25", e.MaxUserGapS)
	}
	if e.Time != "2026-08-08T03:00:00Z" {
		t.Errorf("Time = %q, want RFC 3339 UTC", e.Time)
	}

	if err := soak.AppendTrend(path, e); err != nil {
		t.Fatalf("first append: %v", err)
	}
	e2 := e
	e2.PeakStretch = 8
	if err := soak.AppendTrend(path, e2); err != nil {
		t.Fatalf("second append: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rows []soak.TrendEntry
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("trend file is not a JSON array: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("len(rows) = %d, want 2", len(rows))
	}
	if rows[0].PeakStretch != 4 || rows[1].PeakStretch != 8 {
		t.Errorf("rows out of order: %+v", rows)
	}
}

func TestAppendTrendRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := soak.AppendTrend(path, soak.TrendEntry{}); err == nil {
		t.Fatal("corrupt trend file accepted; history would be silently replaced")
	}
}
