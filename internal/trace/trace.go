// Package trace records and replays low-level tag report streams in a
// CSV format, the workflow a deployed system needs: capture the
// reader's raw output once, then develop, regress, and tune the
// pipeline against the recorded trace offline. The column layout
// mirrors the record fields of Fig. 10 ({RSS, Doppler, Phase, Time
// Stamp} per read, plus identity and channel metadata).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"tagbreathe/internal/epc"
	"tagbreathe/internal/reader"
	"tagbreathe/internal/units"
)

// header is the canonical column order.
var header = []string{
	"timestamp_s", "epc", "antenna", "channel", "freq_hz",
	"rssi_dbm", "phase_rad", "doppler_hz",
}

// Writer streams tag reports to CSV.
type Writer struct {
	csv     *csv.Writer
	started bool
}

// NewWriter wraps w; the header row is written with the first report.
func NewWriter(w io.Writer) *Writer {
	return &Writer{csv: csv.NewWriter(w)}
}

// Write appends one report.
func (w *Writer) Write(r reader.TagReport) error {
	if !w.started {
		if err := w.csv.Write(header); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
		w.started = true
	}
	rec := []string{
		strconv.FormatFloat(r.Timestamp.Seconds(), 'f', 6, 64),
		r.EPC.String(),
		strconv.Itoa(r.AntennaPort),
		strconv.Itoa(r.ChannelIndex),
		strconv.FormatFloat(float64(r.Frequency), 'f', 0, 64),
		strconv.FormatFloat(float64(r.RSSI), 'f', 2, 64),
		strconv.FormatFloat(float64(r.Phase), 'f', 6, 64),
		strconv.FormatFloat(r.DopplerHz, 'f', 4, 64),
	}
	if err := w.csv.Write(rec); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	return nil
}

// Flush completes the output. Call before closing the underlying
// writer.
func (w *Writer) Flush() error {
	w.csv.Flush()
	return w.csv.Error()
}

// WriteAll records a full report slice.
func WriteAll(w io.Writer, reports []reader.TagReport) error {
	tw := NewWriter(w)
	for _, r := range reports {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadAll parses a recorded trace. Reports are returned in file order;
// recorded traces are timestamp-ordered because readers emit them that
// way, and the pipeline requires it. Parse errors name the offending
// line of the file so a bad row in a multi-hour capture can be found
// and fixed without bisecting.
func ReadAll(r io.Reader) ([]reader.TagReport, error) {
	cr := csv.NewReader(r)
	// Column counts are validated per row below so the error can name
	// the offending line. Traces never contain quoted multi-line
	// fields, so FieldPos line numbers are the file's physical lines.
	cr.FieldsPerRecord = -1

	hdr, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("trace: empty file")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(hdr) != len(header) {
		return nil, fmt.Errorf("trace: line 1: header has %d columns, want %d", len(hdr), len(header))
	}
	for i, want := range header {
		if hdr[i] != want {
			return nil, fmt.Errorf("trace: line 1: column %d is %q, want %q", i+1, hdr[i], want)
		}
	}

	out := make([]reader.TagReport, 0, 64)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			// csv.ParseError already names the line.
			return nil, fmt.Errorf("trace: %w", err)
		}
		line, _ := cr.FieldPos(0)
		if len(row) != len(header) {
			return nil, fmt.Errorf("trace: line %d: %d columns, want %d", line, len(row), len(header))
		}
		rep, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rep)
	}
}

func parseRow(row []string) (reader.TagReport, error) {
	var rep reader.TagReport
	ts, err := strconv.ParseFloat(row[0], 64)
	if err != nil {
		return rep, fmt.Errorf("timestamp: %w", err)
	}
	rep.Timestamp = time.Duration(ts * float64(time.Second))
	rep.EPC, err = epc.ParseEPC96(row[1])
	if err != nil {
		return rep, err
	}
	if rep.AntennaPort, err = strconv.Atoi(row[2]); err != nil {
		return rep, fmt.Errorf("antenna: %w", err)
	}
	if rep.ChannelIndex, err = strconv.Atoi(row[3]); err != nil {
		return rep, fmt.Errorf("channel: %w", err)
	}
	freq, err := strconv.ParseFloat(row[4], 64)
	if err != nil {
		return rep, fmt.Errorf("frequency: %w", err)
	}
	rep.Frequency = units.Hertz(freq)
	rssi, err := strconv.ParseFloat(row[5], 64)
	if err != nil {
		return rep, fmt.Errorf("rssi: %w", err)
	}
	rep.RSSI = units.DBm(rssi)
	phase, err := strconv.ParseFloat(row[6], 64)
	if err != nil {
		return rep, fmt.Errorf("phase: %w", err)
	}
	rep.Phase = units.Radians(phase)
	if rep.DopplerHz, err = strconv.ParseFloat(row[7], 64); err != nil {
		return rep, fmt.Errorf("doppler: %w", err)
	}
	return rep, nil
}
