package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"tagbreathe/internal/core"
	"tagbreathe/internal/sim"
)

func TestRoundTripSimulatedTrace(t *testing.T) {
	sc := sim.DefaultScenario()
	sc.Duration = 20 * time.Second
	sc.Seed = 5
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAll(&buf, res.Reports); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Reports) {
		t.Fatalf("round trip %d vs %d reports", len(back), len(res.Reports))
	}
	for i := range back {
		a, b := res.Reports[i], back[i]
		if a.EPC != b.EPC || a.AntennaPort != b.AntennaPort || a.ChannelIndex != b.ChannelIndex {
			t.Fatalf("identity mismatch at %d", i)
		}
		if d := (a.Timestamp - b.Timestamp).Abs(); d > time.Microsecond {
			t.Fatalf("timestamp drift %v at %d", d, i)
		}
		if math.Abs(float64(a.Phase-b.Phase)) > 1e-5 {
			t.Fatalf("phase drift at %d", i)
		}
		if math.Abs(float64(a.RSSI-b.RSSI)) > 0.01 {
			t.Fatalf("rssi drift at %d", i)
		}
	}
}

func TestReplayedTraceEstimatesIdentically(t *testing.T) {
	// The development workflow: a pipeline result computed from a
	// replayed trace matches the live result to CSV precision.
	sc := sim.DefaultScenario()
	sc.Duration = time.Minute
	sc.Seed = 6
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	uid := res.UserIDs[0]
	live, err := core.EstimateUser(res.Reports, uid, core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAll(&buf, res.Reports); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := core.EstimateUser(replayed, uid, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(live.RateBPM-offline.RateBPM) > 0.05 {
		t.Errorf("live %v vs replayed %v bpm", live.RateBPM, offline.RateBPM)
	}
}

func TestReadAllRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "a,b,c,d,e,f,g,h\n",
		"bad epc": strings.Join(header, ",") + "\n" +
			"1.0,nothex,1,0,920000000,-50,1.0,0.0\n",
		"bad float": strings.Join(header, ",") + "\n" +
			"x,000000000000000000000001,1,0,920000000,-50,1.0,0.0\n",
		"short row": strings.Join(header, ",") + "\n1.0,aa\n",
	}
	for name, input := range cases {
		if _, err := ReadAll(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriterHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sc := sim.DefaultScenario()
	sc.Duration = 5 * time.Second
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reports[:3] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "timestamp_s,") {
		t.Errorf("header = %q", lines[0])
	}
}
