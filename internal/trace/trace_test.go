package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"tagbreathe/internal/core"
	"tagbreathe/internal/sim"
)

func TestRoundTripSimulatedTrace(t *testing.T) {
	sc := sim.DefaultScenario()
	sc.Duration = 20 * time.Second
	sc.Seed = 5
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAll(&buf, res.Reports); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Reports) {
		t.Fatalf("round trip %d vs %d reports", len(back), len(res.Reports))
	}
	for i := range back {
		a, b := res.Reports[i], back[i]
		if a.EPC != b.EPC || a.AntennaPort != b.AntennaPort || a.ChannelIndex != b.ChannelIndex {
			t.Fatalf("identity mismatch at %d", i)
		}
		if d := (a.Timestamp - b.Timestamp).Abs(); d > time.Microsecond {
			t.Fatalf("timestamp drift %v at %d", d, i)
		}
		if math.Abs(float64(a.Phase-b.Phase)) > 1e-5 {
			t.Fatalf("phase drift at %d", i)
		}
		if math.Abs(float64(a.RSSI-b.RSSI)) > 0.01 {
			t.Fatalf("rssi drift at %d", i)
		}
	}
}

func TestReplayedTraceEstimatesIdentically(t *testing.T) {
	// The development workflow: a pipeline result computed from a
	// replayed trace matches the live result to CSV precision.
	sc := sim.DefaultScenario()
	sc.Duration = time.Minute
	sc.Seed = 6
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	uid := res.UserIDs[0]
	live, err := core.EstimateUser(res.Reports, uid, core.Config{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteAll(&buf, res.Reports); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := core.EstimateUser(replayed, uid, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(live.RateBPM-offline.RateBPM) > 0.05 {
		t.Errorf("live %v vs replayed %v bpm", live.RateBPM, offline.RateBPM)
	}
}

func TestReadAllRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "a,b,c,d,e,f,g,h\n",
		"bad epc": strings.Join(header, ",") + "\n" +
			"1.0,nothex,1,0,920000000,-50,1.0,0.0\n",
		"bad float": strings.Join(header, ",") + "\n" +
			"x,000000000000000000000001,1,0,920000000,-50,1.0,0.0\n",
		"short row": strings.Join(header, ",") + "\n1.0,aa\n",
	}
	for name, input := range cases {
		if _, err := ReadAll(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadAllErrorsNameLine(t *testing.T) {
	// A bad row in a long capture must be findable: the error names the
	// physical line of the file, not just "parse error".
	hdr := strings.Join(header, ",")
	good := "1.0,000000000000000000000001,1,0,920000000,-50,1.0,0.0"
	cases := map[string]struct {
		input string
		want  string
	}{
		"malformed row on line 3": {
			input: hdr + "\n" + good + "\n" +
				"nope,000000000000000000000001,1,0,920000000,-50,1.0,0.0\n",
			want: "line 3",
		},
		"short row on line 4": {
			input: hdr + "\n" + good + "\n" + good + "\n1.0,aa\n",
			want:  "line 4",
		},
		"short header": {
			input: "timestamp_s,epc,antenna\n",
			want:  "line 1",
		},
		"wrong header name": {
			input: "timestamp_s,epc,antenna,channel,freq_hz,rssi_dbm,phase_rad,bogus\n",
			want:  "line 1",
		},
	}
	for name, tc := range cases {
		_, err := ReadAll(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: expected error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", name, err, tc.want)
		}
	}
}

func TestReadAllHeaderOnly(t *testing.T) {
	// A capture that ended before any reports is a valid empty trace.
	out, err := ReadAll(strings.NewReader(strings.Join(header, ",") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d reports from header-only trace", len(out))
	}
}

func TestWriterHeaderOnce(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	sc := sim.DefaultScenario()
	sc.Duration = 5 * time.Second
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reports[:3] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "timestamp_s,") {
		t.Errorf("header = %q", lines[0])
	}
}
