// Package units provides the small set of physical quantities and
// conversions used throughout the TagBreathe simulation: frequencies and
// wavelengths in the UHF band, power in dBm and watts, and angles.
//
// All quantities are plain float64 named types so arithmetic stays cheap
// and explicit; constructors and converters document the unit at every
// boundary (per the project style guide's "use time.Duration for periods"
// rationale, generalized to physical units).
package units

import "math"

// SpeedOfLight is the propagation speed of radio waves in vacuum, in
// meters per second. Indoor propagation differences are absorbed by the
// channel model, not by adjusting this constant.
const SpeedOfLight = 299_792_458.0 // m/s

// Hertz represents a frequency in Hz.
type Hertz float64

// Common frequency multiples.
const (
	Hz  Hertz = 1
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// Wavelength returns the free-space wavelength in meters for the
// frequency f. It returns +Inf for a zero frequency rather than
// panicking; callers validating configs should reject non-positive
// frequencies before this point.
func (f Hertz) Wavelength() Meters {
	return Meters(SpeedOfLight / float64(f))
}

// Meters represents a distance in meters.
type Meters float64

// Common distance multiples.
const (
	Meter      Meters = 1
	Centimeter Meters = 1e-2
	Millimeter Meters = 1e-3
)

// DBm represents a power level in decibels relative to one milliwatt.
type DBm float64

// Milliwatts converts a dBm power level to milliwatts.
func (p DBm) Milliwatts() float64 {
	return math.Pow(10, float64(p)/10)
}

// Watts converts a dBm power level to watts.
func (p DBm) Watts() float64 {
	return p.Milliwatts() / 1000
}

// DBmFromMilliwatts converts a power in milliwatts to dBm. Non-positive
// inputs map to -Inf dBm, the natural "no signal" representation.
func DBmFromMilliwatts(mw float64) DBm {
	if mw <= 0 {
		return DBm(math.Inf(-1))
	}
	return DBm(10 * math.Log10(mw))
}

// DBmFromWatts converts a power in watts to dBm.
func DBmFromWatts(w float64) DBm {
	return DBmFromMilliwatts(w * 1000)
}

// DB represents a dimensionless ratio expressed in decibels (gains,
// losses, link margins).
type DB float64

// Ratio converts a decibel value to a linear power ratio.
func (g DB) Ratio() float64 {
	return math.Pow(10, float64(g)/10)
}

// DBFromRatio converts a linear power ratio to decibels. Non-positive
// ratios map to -Inf dB.
func DBFromRatio(r float64) DB {
	if r <= 0 {
		return DB(math.Inf(-1))
	}
	return DB(10 * math.Log10(r))
}

// Add applies a gain (or loss, if negative) to a power level.
func (p DBm) Add(g DB) DBm {
	return p + DBm(g)
}

// Radians represents an angle in radians.
type Radians float64

// Degrees represents an angle in degrees.
type Degrees float64

// Radians converts degrees to radians.
func (d Degrees) Radians() Radians {
	return Radians(float64(d) * math.Pi / 180)
}

// Degrees converts radians to degrees.
func (r Radians) Degrees() Degrees {
	return Degrees(float64(r) * 180 / math.Pi)
}

// WrapPhase reduces an angle to the canonical phase interval [0, 2π).
// RFID readers report backscatter phase in this interval (Eq. 1 of the
// paper applies "mod 2π").
func WrapPhase(theta Radians) Radians {
	t := math.Mod(float64(theta), 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	// math.Mod can return a value equal to 2π when theta is a tiny
	// negative number whose remainder rounds up; normalize that edge.
	if t >= 2*math.Pi {
		t = 0
	}
	return Radians(t)
}

// WrapPhaseDiff reduces a phase difference to [-π, π), the branch used
// when interpreting consecutive phase readings as a small displacement
// (Eq. 3): body motion between two reads is far below λ/4, so the
// nearest-branch difference is the physical one.
func WrapPhaseDiff(dtheta Radians) Radians {
	t := math.Mod(float64(dtheta)+math.Pi, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	return Radians(t - math.Pi)
}
