package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWavelength(t *testing.T) {
	tests := []struct {
		name string
		f    Hertz
		want Meters
	}{
		{name: "uhf-915MHz", f: 915 * MHz, want: 0.3276},
		{name: "uhf-920MHz", f: 920.25 * MHz, want: 0.3258},
		{name: "wifi-2.4GHz", f: 2.4 * GHz, want: 0.1249},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.f.Wavelength()
			if math.Abs(float64(got-tt.want)) > 5e-4 {
				t.Errorf("Wavelength(%v) = %v, want ≈%v", tt.f, got, tt.want)
			}
		})
	}
}

func TestDBmConversions(t *testing.T) {
	tests := []struct {
		dbm DBm
		mw  float64
	}{
		{dbm: 0, mw: 1},
		{dbm: 30, mw: 1000},
		{dbm: -30, mw: 0.001},
		{dbm: 10, mw: 10},
		{dbm: 3, mw: 1.9953},
	}
	for _, tt := range tests {
		if got := tt.dbm.Milliwatts(); math.Abs(got-tt.mw) > 1e-3*tt.mw {
			t.Errorf("(%v dBm).Milliwatts() = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := DBmFromMilliwatts(tt.mw); math.Abs(float64(got-tt.dbm)) > 1e-4 {
			t.Errorf("DBmFromMilliwatts(%v) = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
	if got := tt30watts(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("30 dBm = %v W, want 1 W", got)
	}
}

func tt30watts() float64 { return DBm(30).Watts() }

func TestDBmFromNonPositive(t *testing.T) {
	if got := DBmFromMilliwatts(0); !math.IsInf(float64(got), -1) {
		t.Errorf("DBmFromMilliwatts(0) = %v, want -Inf", got)
	}
	if got := DBmFromMilliwatts(-5); !math.IsInf(float64(got), -1) {
		t.Errorf("DBmFromMilliwatts(-5) = %v, want -Inf", got)
	}
	if got := DBFromRatio(0); !math.IsInf(float64(got), -1) {
		t.Errorf("DBFromRatio(0) = %v, want -Inf", got)
	}
}

func TestDBRatioRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		if math.Abs(db) > 200 {
			return true // out of physical range; float overflow territory
		}
		back := DBFromRatio(DB(db).Ratio())
		return math.Abs(float64(back)-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerAddGain(t *testing.T) {
	p := DBm(30).Add(-3).Add(8.5)
	if math.Abs(float64(p)-35.5) > 1e-12 {
		t.Errorf("30 dBm - 3 dB + 8.5 dB = %v, want 35.5", p)
	}
}

func TestAngleConversions(t *testing.T) {
	if got := Degrees(180).Radians(); math.Abs(float64(got)-math.Pi) > 1e-12 {
		t.Errorf("180° = %v rad, want π", got)
	}
	if got := Radians(math.Pi / 2).Degrees(); math.Abs(float64(got)-90) > 1e-12 {
		t.Errorf("π/2 rad = %v°, want 90", got)
	}
}

func TestWrapPhase(t *testing.T) {
	tests := []struct {
		in   Radians
		want Radians
	}{
		{in: 0, want: 0},
		{in: math.Pi, want: math.Pi},
		{in: 2 * math.Pi, want: 0},
		{in: 3 * math.Pi, want: math.Pi},
		{in: -math.Pi / 2, want: 3 * math.Pi / 2},
		{in: -4 * math.Pi, want: 0},
		{in: 7.5 * math.Pi, want: 1.5 * math.Pi},
	}
	for _, tt := range tests {
		got := WrapPhase(tt.in)
		if math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("WrapPhase(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapPhaseRangeProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) || math.Abs(theta) > 1e9 {
			return true
		}
		w := float64(WrapPhase(Radians(theta)))
		return w >= 0 && w < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapPhaseDiff(t *testing.T) {
	tests := []struct {
		in   Radians
		want Radians
	}{
		{in: 0, want: 0},
		{in: math.Pi, want: -math.Pi}, // branch: [-π, π), so π maps to -π
		{in: -math.Pi, want: -math.Pi},
		{in: 3 * math.Pi / 2, want: -math.Pi / 2},
		{in: -3 * math.Pi / 2, want: math.Pi / 2},
		{in: 2 * math.Pi, want: 0},
		{in: 0.1, want: 0.1},
		{in: -0.1, want: -0.1},
	}
	for _, tt := range tests {
		got := WrapPhaseDiff(tt.in)
		if math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("WrapPhaseDiff(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapPhaseDiffProperties(t *testing.T) {
	// Range property: result always in (-π, π].
	rangeOK := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e9 {
			return true
		}
		w := float64(WrapPhaseDiff(Radians(d)))
		return w >= -math.Pi-1e-12 && w < math.Pi+1e-12
	}
	if err := quick.Check(rangeOK, nil); err != nil {
		t.Errorf("range property: %v", err)
	}
	// Equivalence property: result differs from input by a multiple
	// of 2π.
	equivOK := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) || math.Abs(d) > 1e6 {
			return true
		}
		w := float64(WrapPhaseDiff(Radians(d)))
		k := (d - w) / (2 * math.Pi)
		return math.Abs(k-math.Round(k)) < 1e-6
	}
	if err := quick.Check(equivOK, nil); err != nil {
		t.Errorf("equivalence property: %v", err)
	}
}

func TestWrapConsistency(t *testing.T) {
	// Differencing two wrapped phases recovers the true small delta
	// regardless of where the absolute phases sit — the property the
	// Eq. 3 preprocessing relies on.
	f := func(base, delta float64) bool {
		if math.IsNaN(base) || math.IsInf(base, 0) || math.Abs(base) > 1e6 {
			return true
		}
		delta = math.Mod(math.Abs(delta), math.Pi-1e-6) // keep |delta| < π
		a := WrapPhase(Radians(base))
		b := WrapPhase(Radians(base + delta))
		got := float64(WrapPhaseDiff(b - a))
		return math.Abs(got-delta) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
