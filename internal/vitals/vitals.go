// Package vitals analyzes extracted breathing signals beyond the rate
// estimate: per-breath segmentation, breathing depth, inhale/exhale
// timing, rate variability, and apnea (pause) detection.
//
// The paper's introduction motivates exactly these quantities — "a
// deep breath reduces blood pressure and stress, while shallow breath
// and unconscious hold of breath indicate chronic stress", and newborn
// monitoring must tolerate "irregular breathing patterns alternating
// between fast and slow with occasional pauses". This package turns
// the §IV-B breathing waveform into those clinical primitives.
package vitals

import (
	"math"

	"tagbreathe/internal/core"
	"tagbreathe/internal/sigproc"
)

// Breath is one segmented respiratory cycle: inhale start (rising zero
// crossing), the inhalation peak, exhale start (falling crossing), and
// the end (next rising crossing).
type Breath struct {
	// Start and End are seconds since run start; End is the start of
	// the next breath.
	Start, End float64
	// PeakTime is when the waveform peaked during inhalation.
	PeakTime float64
	// Depth is the peak-to-trough excursion of this cycle, in the
	// fused-displacement units of the input signal. Fusion scales
	// amplitude by tag and channel count, so depth is comparable
	// within a user's session, not across configurations.
	Depth float64
	// InhaleDuration and ExhaleDuration split the cycle at the falling
	// crossing.
	InhaleDuration, ExhaleDuration float64
}

// IERatio is the inhale:exhale duration ratio, a standard respiratory
// parameter (healthy resting breathing sits near 1:2, i.e. ≈0.5).
func (b Breath) IERatio() float64 {
	if b.ExhaleDuration <= 0 {
		return 0
	}
	return b.InhaleDuration / b.ExhaleDuration
}

// DurationSec is the full cycle length.
func (b Breath) DurationSec() float64 {
	return b.End - b.Start
}

// SegmentBreaths slices the signal into breaths using its zero
// crossings: each rising crossing opens a cycle, the following falling
// crossing ends the inhale, and the next rising crossing closes the
// cycle. Incomplete leading/trailing cycles are dropped.
func SegmentBreaths(sig *core.BreathSignal) []Breath {
	if sig == nil || len(sig.Crossings) < 3 || sig.SampleRate <= 0 {
		return nil
	}
	cr := sig.Crossings
	var out []Breath
	for i := 0; i+2 < len(cr); i++ {
		if !cr[i].Rising || cr[i+1].Rising || !cr[i+2].Rising {
			continue
		}
		b := Breath{
			Start:          cr[i].T,
			End:            cr[i+2].T,
			InhaleDuration: cr[i+1].T - cr[i].T,
			ExhaleDuration: cr[i+2].T - cr[i+1].T,
		}
		// Peak and trough within the cycle, from the waveform samples.
		peakV, troughV := math.Inf(-1), math.Inf(1)
		peakT := b.Start
		lo := sig.IndexAt(b.Start)
		hi := sig.IndexAt(b.End)
		for s := lo; s <= hi && s < len(sig.Samples); s++ {
			v := sig.Samples[s]
			if v > peakV {
				peakV = v
				peakT = sig.T0 + float64(s)/sig.SampleRate
			}
			if v < troughV {
				troughV = v
			}
		}
		if math.IsInf(peakV, -1) {
			continue
		}
		b.PeakTime = peakT
		b.Depth = peakV - troughV
		out = append(out, b)
	}
	return out
}

// Apnea is a detected breathing pause.
type Apnea struct {
	// Start and End bound the pause, seconds since run start.
	Start, End float64
}

// DurationSec is the pause length.
func (a Apnea) DurationSec() float64 {
	return a.End - a.Start
}

// DetectApneas flags stretches of at least minPauseSec where the
// breathing envelope collapses, delegating to the core signal's
// envelope-based pause detector (shared with the realtime monitor's
// apnea alarms).
func DetectApneas(sig *core.BreathSignal, minPauseSec float64) []Apnea {
	pauses := sig.DetectPauses(minPauseSec)
	out := make([]Apnea, 0, len(pauses))
	for _, p := range pauses {
		out = append(out, Apnea{Start: p[0], End: p[1]})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Summary aggregates a window's respiratory parameters.
type Summary struct {
	// Breaths is the number of complete segmented cycles.
	Breaths int
	// MeanRateBPM and RateStdBPM characterize rate and its
	// variability over the segmented cycles.
	MeanRateBPM, RateStdBPM float64
	// MeanDepth and DepthCV (coefficient of variation) characterize
	// breathing depth consistency; rising CV flags erratic breathing.
	MeanDepth, DepthCV float64
	// MeanIERatio is the average inhale:exhale ratio.
	MeanIERatio float64
	// Apneas lists pauses of at least the configured duration.
	Apneas []Apnea
}

// Summarize computes a Summary from a breathing signal. minPauseSec
// configures apnea detection; values ≤ 0 default to 8 seconds (twice
// the slowest Table I breath period is a conservative alarm line).
func Summarize(sig *core.BreathSignal, minPauseSec float64) Summary {
	if minPauseSec <= 0 {
		minPauseSec = 8
	}
	breaths := SegmentBreaths(sig)
	s := Summary{
		Breaths: len(breaths),
		Apneas:  DetectApneas(sig, minPauseSec),
	}
	if len(breaths) == 0 {
		return s
	}
	rates := make([]float64, 0, len(breaths))
	depths := make([]float64, 0, len(breaths))
	var ieSum float64
	for _, b := range breaths {
		if d := b.DurationSec(); d > 0 {
			rates = append(rates, 60/d)
		}
		depths = append(depths, b.Depth)
		ieSum += b.IERatio()
	}
	s.MeanRateBPM = sigproc.Mean(rates)
	s.RateStdBPM = sigproc.StdDev(rates)
	s.MeanDepth = sigproc.Mean(depths)
	if s.MeanDepth > 0 {
		s.DepthCV = sigproc.StdDev(depths) / s.MeanDepth
	}
	s.MeanIERatio = ieSum / float64(len(breaths))
	return s
}
