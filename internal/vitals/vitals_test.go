package vitals

import (
	"math"
	"testing"
	"time"

	"tagbreathe/internal/core"
	"tagbreathe/internal/sim"
)

// syntheticSignal builds a BreathSignal directly from a waveform
// function sampled at rate Hz for dur seconds, with crossings detected
// the same way the pipeline does.
func syntheticSignal(t *testing.T, wave func(float64) float64, dur, rate float64) *core.BreathSignal {
	t.Helper()
	n := int(dur * rate)
	bins := make([]float64, n)
	for i := range bins {
		t0 := float64(i) / rate
		t1 := float64(i+1) / rate
		bins[i] = wave(t1) - wave(t0)
	}
	sig, err := core.ExtractBreath(bins, 1/rate, 0, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestSegmentBreathsSinusoid(t *testing.T) {
	// 12 bpm sinusoid for 60 s: ≈11 complete cycles segmentable after
	// edge trim.
	sig := syntheticSignal(t, func(tt float64) float64 {
		return 0.005 * math.Sin(2*math.Pi*0.2*tt)
	}, 60, 16)
	breaths := SegmentBreaths(sig)
	if len(breaths) < 9 || len(breaths) > 12 {
		t.Fatalf("segmented %d breaths, want ≈11", len(breaths))
	}
	for i, b := range breaths {
		if d := b.DurationSec(); math.Abs(d-5) > 0.5 {
			t.Errorf("breath %d duration %v, want ≈5 s", i, d)
		}
		if b.Depth <= 0 {
			t.Errorf("breath %d depth %v", i, b.Depth)
		}
		// A symmetric sinusoid has I:E ≈ 1.
		if r := b.IERatio(); r < 0.8 || r > 1.25 {
			t.Errorf("breath %d I:E %v, want ≈1 for a sinusoid", i, r)
		}
		if b.PeakTime <= b.Start || b.PeakTime >= b.End {
			t.Errorf("breath %d peak at %v outside [%v, %v]", i, b.PeakTime, b.Start, b.End)
		}
	}
}

func TestSegmentBreathsAsymmetric(t *testing.T) {
	// Crossing-based I:E compares the above-mean lobe (lungs fuller
	// than average) with the below-mean lobe. Build a 6 s cycle whose
	// positive lobe lasts 2 s and negative lobe 4 s: I:E ≈ 0.5,
	// partially smoothed by the band-pass.
	wave := func(tt float64) float64 {
		phase := math.Mod(tt, 6) / 6
		if phase < 1.0/3 {
			return 0.005 * math.Sin(math.Pi*phase*3)
		}
		return -0.005 * math.Sin(math.Pi*(phase-1.0/3)*1.5)
	}
	sig := syntheticSignal(t, wave, 90, 16)
	breaths := SegmentBreaths(sig)
	if len(breaths) < 5 {
		t.Fatalf("segmented %d breaths", len(breaths))
	}
	var ieSum float64
	for _, b := range breaths {
		ieSum += b.IERatio()
	}
	if mean := ieSum / float64(len(breaths)); mean > 0.85 {
		t.Errorf("mean I:E %v for a short-inhale pattern, want < 0.85", mean)
	}
}

func TestSegmentBreathsDegenerate(t *testing.T) {
	if got := SegmentBreaths(nil); got != nil {
		t.Errorf("nil signal: %v", got)
	}
	empty := &core.BreathSignal{SampleRate: 16}
	if got := SegmentBreaths(empty); got != nil {
		t.Errorf("no crossings: %v", got)
	}
}

func TestDetectApneasOnPause(t *testing.T) {
	// Breathing for 25 s, flat for 15 s, breathing again.
	wave := func(tt float64) float64 {
		switch {
		case tt < 25:
			return 0.005 * math.Sin(2*math.Pi*0.25*tt)
		case tt < 40:
			return 0.005 * math.Sin(2*math.Pi*0.25*25)
		default:
			return 0.005 * math.Sin(2*math.Pi*0.25*(tt-15))
		}
	}
	sig := syntheticSignal(t, wave, 70, 16)
	apneas := DetectApneas(sig, 8)
	if len(apneas) != 1 {
		t.Fatalf("apneas = %+v, want exactly 1", apneas)
	}
	a := apneas[0]
	if a.Start < 20 || a.Start > 30 || a.End < 36 || a.End > 46 {
		t.Errorf("apnea [%v, %v], want ≈[25, 40]", a.Start, a.End)
	}
	if a.DurationSec() < 10 {
		t.Errorf("apnea duration %v, want ≥ 10", a.DurationSec())
	}
}

func TestDetectApneasNoneOnSteadyBreathing(t *testing.T) {
	sig := syntheticSignal(t, func(tt float64) float64 {
		return 0.005 * math.Sin(2*math.Pi*0.2*tt)
	}, 60, 16)
	if apneas := DetectApneas(sig, 8); len(apneas) != 0 {
		t.Errorf("false apneas on steady breathing: %+v", apneas)
	}
}

func TestDetectApneasTrailingPause(t *testing.T) {
	// Breathing stops and never resumes: the alarm must fire at the
	// window edge.
	wave := func(tt float64) float64 {
		if tt < 20 {
			return 0.005 * math.Sin(2*math.Pi*0.25*tt)
		}
		return 0.005 * math.Sin(2*math.Pi*0.25*20)
	}
	sig := syntheticSignal(t, wave, 45, 16)
	apneas := DetectApneas(sig, 8)
	if len(apneas) == 0 {
		t.Fatal("trailing apnea not detected")
	}
	last := apneas[len(apneas)-1]
	if last.End < 42 {
		t.Errorf("trailing apnea ends at %v, want ≈ window end", last.End)
	}
}

func TestSummarize(t *testing.T) {
	sig := syntheticSignal(t, func(tt float64) float64 {
		return 0.005 * math.Sin(2*math.Pi*0.2*tt)
	}, 90, 16)
	s := Summarize(sig, 0) // default pause threshold
	if s.Breaths < 14 {
		t.Fatalf("breaths = %d over 90 s at 12 bpm", s.Breaths)
	}
	if math.Abs(s.MeanRateBPM-12) > 0.8 {
		t.Errorf("mean rate %v, want ≈12", s.MeanRateBPM)
	}
	if s.RateStdBPM > 1 {
		t.Errorf("rate std %v for a metronomic sinusoid", s.RateStdBPM)
	}
	if s.MeanDepth <= 0 {
		t.Errorf("mean depth %v", s.MeanDepth)
	}
	if s.DepthCV > 0.2 {
		t.Errorf("depth CV %v for constant-amplitude breathing", s.DepthCV)
	}
	if len(s.Apneas) != 0 {
		t.Errorf("apneas = %+v on steady breathing", s.Apneas)
	}
}

func TestVitalsEndToEndIrregular(t *testing.T) {
	// Full stack: an irregular breather with pauses monitored through
	// the simulator; the summary must notice the pauses and elevated
	// variability relative to a metronomic subject.
	run := func(pattern sim.PatternKind) Summary {
		sc := sim.DefaultScenario()
		sc.Duration = 3 * time.Minute
		sc.Seed = 31
		sc.DefaultDistance = 2
		sc.Users[0].Pattern = pattern
		res, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		est, err := core.EstimateUser(res.Reports, res.UserIDs[0], core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		// The simulated irregular pattern pauses for ~6 s; alarm at 4.
		return Summarize(est.Signal, 4)
	}
	steady := run(sim.PatternMetronome)
	irregular := run(sim.PatternIrregular)
	if steady.Breaths == 0 || irregular.Breaths == 0 {
		t.Fatalf("segmentation failed: steady %d, irregular %d", steady.Breaths, irregular.Breaths)
	}
	if irregular.RateStdBPM <= steady.RateStdBPM {
		t.Errorf("irregular rate std %v not above steady %v",
			irregular.RateStdBPM, steady.RateStdBPM)
	}
	if len(irregular.Apneas) == 0 {
		t.Error("irregular pattern with pauses produced no apnea events")
	}
	if len(steady.Apneas) > 1 {
		t.Errorf("steady breathing produced false apneas: %+v", steady.Apneas)
	}
}
