#!/usr/bin/env bash
# CI guard for the capacity model: run the closed-loop harness at 1k
# and 10k users and compare against the checked-in BENCH_capacity.json
# baseline. Fails when tick-latency p99 or bytes/user regress by more
# than the allowed factor — i.e. when a change quietly made each user
# slower or fatter than the recorded curve says they are. The whole
# run is sized to stay under a minute on a CI runner.
#
# Usage: scripts/capacity_smoke.sh [tolerance] [users]
#   tolerance  max regression factor vs baseline (default 3)
#   users      comma-separated sweep counts (default 1000,10000)
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-3}"
USERS="${2:-1000,10000}"

go run ./cmd/tagbreathe-load \
  -users "$USERS" \
  -check BENCH_capacity.json \
  -tolerance "$TOLERANCE"

echo "capacity_smoke: OK — within ${TOLERANCE}x of BENCH_capacity.json at ${USERS} users"
