#!/usr/bin/env bash
# CI guard for the incremental stage engine's core promise: a streaming
# monitor tick costs the same at a 120 s analysis window as at 25 s.
# Runs BenchmarkMonitorTickWindow/mode=stream at windows {25s, 60s,
# 120s} and fails if per-tick ns/op grows superlinearly past the
# allowed ratio — i.e. if someone reintroduces window-proportional work
# (re-fusion, re-filtering, sample copies) into the tick path.
#
# Usage: scripts/tick_bench_smoke.sh [benchtime] [max_ratio]
#   benchtime  go test -benchtime value (default 300x)
#   max_ratio  max allowed ns(120s)/ns(25s) (default 3; flat is ~1)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-300x}"
MAX_RATIO="${2:-3}"

OUT=$(go test ./internal/core/ -run '^$' \
  -bench 'BenchmarkMonitorTickWindow/mode=stream' \
  -benchtime "$BENCHTIME" -count=1)
echo "$OUT"

echo "$OUT" | awk -v max_ratio="$MAX_RATIO" '
/mode=stream\/window=25s/   { ns25 = $3 }
/mode=stream\/window=1m0s/  { ns60 = $3 }
/mode=stream\/window=2m0s/  { ns120 = $3 }
END {
    if (ns25 == "" || ns60 == "" || ns120 == "") {
        print "tick_bench_smoke: missing benchmark output"; exit 1
    }
    ratio = ns120 / ns25
    printf "tick_bench_smoke: stream tick ns/op 25s=%d 60s=%d 120s=%d ratio(120s/25s)=%.2f (max %.2f)\n", \
        ns25, ns60, ns120, ratio, max_ratio
    if (ratio > max_ratio) {
        print "tick_bench_smoke: FAIL — streaming tick cost grows with the window"
        exit 1
    }
    print "tick_bench_smoke: OK — streaming tick cost is flat in the window"
}'
