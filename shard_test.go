package tagbreathe_test

import (
	"reflect"
	"testing"
	"time"

	"tagbreathe"
)

// multiUserScenario simulates the Fig. 13 side-by-side layout: n users
// breathing at distinct rates, one reader, two minutes.
func multiUserScenario(t *testing.T, n int, seed int64) *tagbreathe.Result {
	t.Helper()
	sc := tagbreathe.DefaultScenario()
	sc.Seed = seed
	sc.Users = tagbreathe.SideBySide(n, 4, 9, 12, 15, 18)
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEstimateShardedMatchesSequential is the sharding correctness
// gate: the same simulated multi-user report window through the
// sequential (Workers=1) and sharded (Workers=8) batch paths must
// produce identical UserEstimate output per user — not approximately
// equal, bit-identical. Shards share no state, so parallel execution
// must not change a single float.
func TestEstimateShardedMatchesSequential(t *testing.T) {
	res := multiUserScenario(t, 4, 42)

	seq, err := tagbreathe.Estimate(res.Reports, tagbreathe.Config{Users: res.UserIDs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	shd, err := tagbreathe.Estimate(res.Reports, tagbreathe.Config{Users: res.UserIDs, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if len(seq) == 0 {
		t.Fatal("sequential path produced no estimates")
	}
	if len(seq) != len(shd) {
		t.Fatalf("user count diverged: sequential %d, sharded %d", len(seq), len(shd))
	}
	for uid, se := range seq {
		pe, ok := shd[uid]
		if !ok {
			t.Errorf("user %x present sequentially, absent sharded", uid)
			continue
		}
		if !reflect.DeepEqual(se, pe) {
			t.Errorf("user %x estimates diverged:\nsequential: %+v\nsharded:    %+v", uid, se, pe)
		}
	}
}

// TestEstimateShardedDeterministic guards the worker pool against
// scheduling-dependent output: repeated sharded runs over the same
// window must be identical.
func TestEstimateShardedDeterministic(t *testing.T) {
	res := multiUserScenario(t, 3, 43)
	cfg := tagbreathe.Config{Users: res.UserIDs, Workers: 4}
	first, err := tagbreathe.Estimate(res.Reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := tagbreathe.Estimate(res.Reports, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("sharded run %d diverged from the first", i+2)
		}
	}
}

// TestMonitorShardedDeterministicAndOrdered guards the monitor's
// demux → shard → collector pipeline: replaying the same stream must
// yield the identical update sequence, globally ordered by stream time
// and by user ID within a tick, regardless of shard scheduling.
func TestMonitorShardedDeterministicAndOrdered(t *testing.T) {
	res := multiUserScenario(t, 3, 44)
	cfg := tagbreathe.MonitorConfig{UpdateEvery: 5 * time.Second}

	first, err := tagbreathe.MonitorStream(res.Reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no updates")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if b.Time < a.Time {
			t.Fatalf("update %d time %v regressed below %v", i, b.Time, a.Time)
		}
		if b.Time == a.Time && b.UserID <= a.UserID {
			t.Fatalf("update %d user %x out of order within tick at %v", i, b.UserID, b.Time)
		}
	}
	again, err := tagbreathe.MonitorStream(res.Reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("monitor replay diverged between runs")
	}
}

// TestMonitorOverloadPolicies exercises both shard-queue overload
// policies end to end: blocking backpressure must be lossless (zero
// drops), and drop-newest must keep producing updates even with a
// deliberately starved one-slot queue.
func TestMonitorOverloadPolicies(t *testing.T) {
	res := multiUserScenario(t, 2, 45)

	m := tagbreathe.NewMonitor(tagbreathe.MonitorConfig{
		Pipeline:    tagbreathe.Config{Users: res.UserIDs},
		UpdateEvery: 2 * time.Second,
	})
	done := make(chan int)
	go func() {
		n := 0
		for range m.Updates() {
			n++
		}
		done <- n
	}()
	for _, r := range res.Reports {
		m.Ingest(r)
	}
	m.CloseInput()
	if n := <-done; n == 0 {
		t.Error("blocking monitor produced no updates")
	}
	if d := m.DroppedReports(); d != 0 {
		t.Errorf("OverloadBlock dropped %d reports, want 0", d)
	}

	drops, err := tagbreathe.MonitorStream(res.Reports, tagbreathe.MonitorConfig{
		Pipeline:    tagbreathe.Config{Users: res.UserIDs},
		UpdateEvery: 2 * time.Second,
		ShardQueue:  1,
		Overload:    tagbreathe.OverloadDropNewest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(drops) == 0 {
		t.Error("drop-newest monitor produced no updates")
	}
}
