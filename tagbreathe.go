// Package tagbreathe is a Go implementation of TagBreathe (Hou, Wang,
// Zheng — IEEE ICDCS 2017): breath monitoring of one or more users with
// commodity UHF RFID systems. Passive tags on a user's clothes
// backscatter the reader's carrier; chest and abdomen motion during
// breathing modulates the backscatter phase, and the pipeline in this
// module turns the reader's low-level data stream into per-user
// breathing waveforms and rates.
//
// The package is the public facade over the implementation packages:
//
//   - Simulation substrate (no reader hardware required): breathing
//     body models, the UHF channel with frequency hopping, the EPC
//     Gen2 inventory MAC, and a reader emulator produce the same
//     low-level record stream an Impinj R420 reports.
//   - The TagBreathe pipeline: per-channel phase differencing,
//     multi-tag sensor fusion, band-limited breath extraction, and
//     zero-crossing rate estimation, in batch (Estimate) and
//     streaming (Monitor) forms.
//   - An LLRP-style wire protocol with both reader (server) and host
//     (client) ends, so the pipeline can run against a remote reader
//     emulator exactly as the original system ran against its reader.
//
// # Quick start
//
//	sc := tagbreathe.DefaultScenario()        // 1 user, 3 tags, 10 bpm
//	res, err := sc.Run()                      // simulate two minutes
//	if err != nil { ... }
//	ests, err := tagbreathe.Estimate(res.Reports, tagbreathe.Config{
//		Users: res.UserIDs,
//	})
//	for uid, est := range ests {
//		fmt.Printf("user %x breathes at %.1f bpm\n", uid, est.RateBPM)
//	}
//
// See the examples directory for multi-user monitoring, a multi-
// antenna ward deployment, and live streaming over the LLRP protocol.
package tagbreathe

import (
	"context"
	"io"
	"math/rand"
	"time"

	"tagbreathe/internal/baseline"
	"tagbreathe/internal/body"
	"tagbreathe/internal/commission"
	"tagbreathe/internal/core"
	"tagbreathe/internal/epc"
	"tagbreathe/internal/fleet"
	"tagbreathe/internal/llrp"
	"tagbreathe/internal/multimodal"
	"tagbreathe/internal/obs"
	"tagbreathe/internal/reader"
	"tagbreathe/internal/sim"
	"tagbreathe/internal/trace"
	"tagbreathe/internal/vitals"
)

// Core pipeline types.
type (
	// Config tunes the TagBreathe pipeline; the zero value uses the
	// paper's parameters (0.67 Hz cutoff, M = 7 crossings, 16 Hz
	// fusion bins).
	Config = core.Config
	// UserEstimate is the pipeline output for one user.
	UserEstimate = core.UserEstimate
	// BreathSignal is an extracted breathing waveform.
	BreathSignal = core.BreathSignal
	// Monitor is the realtime streaming pipeline.
	Monitor = core.Monitor
	// MonitorConfig tunes the streaming monitor.
	MonitorConfig = core.MonitorConfig
	// RateUpdate is one realtime per-user rate estimate.
	RateUpdate = core.RateUpdate
	// DisplacementSample is one Eq. 3 displacement value.
	DisplacementSample = core.DisplacementSample
	// OverloadPolicy selects what the monitor does when a shard
	// worker's queue overflows (see MonitorConfig.Overload).
	OverloadPolicy = core.OverloadPolicy
	// DegradeConfig tunes the monitor's graceful-degradation ladder —
	// the per-worker controller that stretches tick cadence under
	// sustained overload before any data is shed (see
	// MonitorConfig.Degrade). The zero value disables it.
	DegradeConfig = core.DegradeConfig
	// ShedClass ranks a report's vantage quality for quality-aware
	// load shedding (see Monitor.VantageClass and
	// FleetConfig.ShedClass).
	ShedClass = core.ShedClass
	// FilterMode selects the stage engine's band-pass implementation
	// (see Config.Filter).
	FilterMode = core.FilterMode
)

// Band-pass filter modes for Config.Filter.
const (
	// FilterDefault resolves via Config.UseFIRFilter: the FFT filter
	// unless it asks for the batch FIR.
	FilterDefault = core.FilterDefault
	// FilterFFT recomputes the window each tick through the FFT
	// band-pass — the paper's reference extraction (§IV-B).
	FilterFFT = core.FilterFFT
	// FilterFIRBatch recomputes the window each tick through the
	// linear-phase FIR band-pass.
	FilterFIRBatch = core.FilterFIRBatch
	// FilterFIRStreaming runs the causal streaming FIR chain: Monitor
	// ticks cost O(new samples + taps) independent of the window, at
	// the price of the filter's group delay (~13 s at the default
	// band) before updates reflect the newest breaths.
	FilterFIRStreaming = core.FilterFIRStreaming
)

// Overload policies for MonitorConfig.Overload.
const (
	// OverloadBlock applies lossless backpressure to Ingest (default).
	OverloadBlock = core.OverloadBlock
	// OverloadDropNewest sheds the incoming report for a full shard
	// queue and counts it (Monitor.DroppedReports).
	OverloadDropNewest = core.OverloadDropNewest
)

// Vantage classes for quality-aware shedding (ShedClass values, worst
// to shed first: redundant, then unknown, then primary).
const (
	// ShedUnknown: the user has no selected vantage yet.
	ShedUnknown = core.ShedUnknown
	// ShedPrimary: the report is from the user's selected vantage.
	ShedPrimary = core.ShedPrimary
	// ShedRedundant: the report is from a non-selected vantage.
	ShedRedundant = core.ShedRedundant
)

// Reader-facing types.
type (
	// TagReport is one low-level read record, the unit of input.
	TagReport = reader.TagReport
	// Antenna is one reader antenna port and its position.
	Antenna = reader.Antenna
	// EPC96 is a 96-bit tag identifier (64-bit user ‖ 32-bit tag).
	EPC96 = epc.EPC96
)

// Simulation types.
type (
	// Scenario is a complete simulated experiment configuration.
	Scenario = sim.Scenario
	// UserSpec describes one simulated subject.
	UserSpec = sim.UserSpec
	// Result is a completed simulation run.
	Result = sim.Result
	// Posture is a subject's body position.
	Posture = body.Posture
	// TagSite is a tag attachment location on the torso.
	TagSite = body.TagSite
)

// Posture values.
const (
	Sitting  = body.Sitting
	Standing = body.Standing
	Lying    = body.Lying
)

// Tag site values.
const (
	SiteChest   = body.SiteChest
	SiteMid     = body.SiteMid
	SiteAbdomen = body.SiteAbdomen
)

// Breathing pattern families for UserSpec.Pattern.
const (
	PatternMetronome = sim.PatternMetronome
	PatternNatural   = sim.PatternNatural
	PatternIrregular = sim.PatternIrregular
)

// LLRP protocol types for remote-reader deployments.
type (
	// LLRPClient is the host end of an LLRP connection.
	LLRPClient = llrp.Client
	// LLRPServer is the reader end (used by the emulator daemon).
	LLRPServer = llrp.Server
	// ROSpecConfig selects antennas and report batching.
	ROSpecConfig = llrp.ROSpecConfig
	// LLRPSession is a managed reader connection: it dials, provisions
	// the ROSpec, and reconnects with backoff after any link failure,
	// delivering reports on one stable channel throughout.
	LLRPSession = llrp.Session
	// LLRPSessionConfig tunes the session's reconnect and watchdog
	// policy.
	LLRPSessionConfig = llrp.SessionConfig
	// LLRPSessionState is the session's lifecycle state.
	LLRPSessionState = llrp.SessionState
)

// LLRP session lifecycle states (see LLRPSession.State).
const (
	SessionConnecting = llrp.SessionConnecting
	SessionUp         = llrp.SessionUp
	SessionBackoff    = llrp.SessionBackoff
	SessionClosed     = llrp.SessionClosed
)

// Estimate runs the batch pipeline over a report window and returns
// per-user estimates. See core.Estimate for details.
func Estimate(reports []TagReport, cfg Config) (map[uint64]*UserEstimate, error) {
	return core.Estimate(reports, cfg)
}

// EstimateUser runs the batch pipeline for a single user.
func EstimateUser(reports []TagReport, userID uint64, cfg Config) (*UserEstimate, error) {
	return core.EstimateUser(reports, userID, cfg)
}

// NewMonitor starts a realtime streaming monitor; see Monitor.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return core.NewMonitor(cfg)
}

// MonitorStream replays a recorded report stream through a monitor and
// returns every rate update it produced.
func MonitorStream(reports []TagReport, cfg MonitorConfig) ([]RateUpdate, error) {
	return core.MonitorStream(reports, cfg)
}

// Accuracy is the paper's Eq. 8 metric: 1 − |measured − truth|/truth,
// clamped at zero.
func Accuracy(measured, truth float64) float64 {
	return core.Accuracy(measured, truth)
}

// HeartEstimate is the experimental cardiac extension's output.
type HeartEstimate = core.HeartEstimate

// EstimateHeartRate runs the experimental cardiac extension: the same
// phase stream, analyzed in the 0.8–2.5 Hz band. Check
// HeartEstimate.PeakProminence before trusting the rate — commodity
// readers' phase-noise floor buries the ~0.35 mm apex beat (see the
// heart study in EXPERIMENTS.md).
func EstimateHeartRate(reports []TagReport, userID uint64, cfg Config) (*HeartEstimate, error) {
	return core.EstimateHeartRate(reports, userID, cfg)
}

// DefaultScenario returns the paper's Table I default experiment:
// one sitting user with three tags, paced at 10 bpm, 4 m from a single
// antenna, two minutes.
func DefaultScenario() *Scenario {
	return sim.DefaultScenario()
}

// SideBySide builds UserSpecs for n users seated shoulder to shoulder
// at the given distance, the Fig. 13 multi-user layout.
func SideBySide(n int, distance float64, ratesBPM ...float64) []UserSpec {
	return sim.SideBySide(n, distance, ratesBPM...)
}

// NewUserTagEPC packs the paper's Fig. 9 EPC layout: 64-bit user ID
// followed by a 32-bit tag ID.
func NewUserTagEPC(userID uint64, tagID uint32) EPC96 {
	return epc.NewUserTagEPC(userID, tagID)
}

// DialLLRP connects to an LLRP reader (or the llrpsim emulator).
func DialLLRP(addr string) (*LLRPClient, error) {
	return llrp.Dial(addr, 10*time.Second)
}

// StartLLRPSession starts a managed reader session: a supervision loop
// that dials cfg.Addr, provisions cfg.ROSpec, and transparently
// reconnects with exponential backoff whenever the link dies, so
// long-running deployments survive reader restarts and network faults
// without consumer-side re-wiring. Reports from every incarnation of
// the connection arrive on the one channel Session.Reports returns.
// Canceling ctx (or calling Close) ends the session for good.
func StartLLRPSession(ctx context.Context, cfg LLRPSessionConfig) (*LLRPSession, error) {
	return llrp.StartSession(ctx, cfg)
}

// Reader-fleet types for multi-reader deployments: a registry of named
// LLRP endpoints, each under its own supervised session, merged onto
// one provenance-tagged report channel that feeds a single Monitor.
// The pipeline's (reader, antenna) selection merges overlapping
// coverage deterministically — a user seen by several readers is
// estimated once, from the best vantage, never double-counted.
type (
	// Fleet is a running multi-reader registry (see StartFleet).
	Fleet = fleet.Fleet
	// FleetConfig assembles a fleet: initial readers, the per-reader
	// session template, merge buffering, and instrumentation.
	FleetConfig = fleet.Config
	// FleetReaderConfig is one named reader endpoint in the registry.
	FleetReaderConfig = fleet.ReaderConfig
	// FleetReaderStatus is one reader's registry view (the
	// /debug/fleet row).
	FleetReaderStatus = fleet.ReaderStatus
	// FleetMetrics instruments the fleet registry with reader-labeled
	// families.
	FleetMetrics = fleet.Metrics
)

// StartFleet starts a multi-reader fleet: one supervised LLRP session
// per configured reader, merged onto the single channel Fleet.Reports
// returns, with every report stamped with its reader's name
// (TagReport.ReaderID). Readers can be added, removed, and
// reconfigured at runtime; one stalled or dead reader never blocks
// the others. Canceling ctx (or calling Close) tears the fleet down.
func StartFleet(ctx context.Context, cfg FleetConfig) (*Fleet, error) {
	return fleet.Start(ctx, cfg)
}

// NewFleetMetrics wires fleet-registry instruments into r (nil r:
// live, unexposed).
func NewFleetMetrics(r *MetricsRegistry) *FleetMetrics {
	return fleet.NewMetrics(r)
}

// Observability. The obs layer is zero-dependency: a concurrent
// metrics registry with Prometheus text-format and expvar exposition,
// plus an optional debug HTTP server (/metrics, /healthz, pprof).
// Every pipeline stage accepts a metrics set built from one registry;
// passing nil disables exposition at zero hot-path cost.
type (
	// MetricsRegistry collects metric families for exposition.
	MetricsRegistry = obs.Registry
	// DebugServer serves /metrics, /healthz, and pprof endpoints.
	DebugServer = obs.DebugServer
	// MonitorMetrics instruments the streaming Monitor (see
	// MonitorConfig.Metrics).
	MonitorMetrics = core.MonitorMetrics
	// EstimateMetrics instruments the batch pipeline (see
	// Config.Metrics).
	EstimateMetrics = core.EstimateMetrics
	// LLRPServerMetrics instruments the reader-side protocol end.
	LLRPServerMetrics = llrp.ServerMetrics
	// LLRPClientMetrics instruments the host-side protocol end.
	LLRPClientMetrics = llrp.ClientMetrics
	// LLRPSessionMetrics instruments the managed session layer
	// (reconnects, outages, watchdog trips).
	LLRPSessionMetrics = llrp.SessionMetrics
)

// Pipeline tracing. A Tracer samples reports at a configurable stride
// and stamps each sampled one at every pipeline stage it passes — LLRP
// frame decode, session forward, monitor ingest, demux, worker dequeue,
// engine feed, update emit — feeding per-stage latency histograms, an
// end-to-end report→update histogram, and an exemplar ring served at
// the debug server's /debug/traces. Thread one tracer through
// LLRPSessionConfig.Tracer and MonitorConfig.Tracer; a nil tracer is
// valid everywhere and traces nothing.
type (
	// Tracer samples end-to-end report traces through the pipeline.
	Tracer = obs.Tracer
	// TracerConfig tunes a Tracer's sampling stride and exemplar ring.
	TracerConfig = obs.TracerConfig
	// TraceStage is one stamped pipeline position of a sampled report.
	TraceStage = obs.Stage
	// TraceExemplar is one completed trace, as served by /debug/traces.
	TraceExemplar = obs.TraceExemplar
)

// Trace stages, in pipeline order.
const (
	StageRead    = obs.StageRead
	StageForward = obs.StageForward
	StageIngest  = obs.StageIngest
	StageDemux   = obs.StageDemux
	StageWorker  = obs.StageWorker
	StageFeed    = obs.StageFeed
	StageEmit    = obs.StageEmit
)

// NewTracer wires a pipeline tracer's instruments into r (nil r: live
// but unexposed) and builds its exemplar ring.
func NewTracer(r *MetricsRegistry, cfg TracerConfig) *Tracer {
	return obs.NewTracer(r, cfg)
}

// RegisterRuntimeMetrics bridges Go runtime telemetry (GC pause and
// scheduling-latency quantiles, heap size, goroutine count) into the
// registry, refreshed on every scrape.
func RegisterRuntimeMetrics(r *MetricsRegistry) {
	obs.RegisterRuntime(r)
}

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry {
	return obs.NewRegistry()
}

// NewMonitorMetrics wires streaming-monitor instruments into r (nil r:
// instruments work but are not exposed anywhere).
func NewMonitorMetrics(r *MetricsRegistry) *MonitorMetrics {
	return core.NewMonitorMetrics(r)
}

// NewEstimateMetrics wires batch-pipeline instruments into r.
func NewEstimateMetrics(r *MetricsRegistry) *EstimateMetrics {
	return core.NewEstimateMetrics(r)
}

// NewLLRPServerMetrics wires reader-side protocol instruments into r.
func NewLLRPServerMetrics(r *MetricsRegistry) *LLRPServerMetrics {
	return llrp.NewServerMetrics(r)
}

// NewLLRPClientMetrics wires host-side protocol instruments into r.
func NewLLRPClientMetrics(r *MetricsRegistry) *LLRPClientMetrics {
	return llrp.NewClientMetrics(r)
}

// NewLLRPSessionMetrics wires session-layer instruments into r.
func NewLLRPSessionMetrics(r *MetricsRegistry) *LLRPSessionMetrics {
	return llrp.NewSessionMetrics(r)
}

// ServeDebug starts the debug HTTP server on addr, exposing the
// registry at /metrics plus /healthz and /debug/pprof. Close the
// returned server when done.
func ServeDebug(addr string, r *MetricsRegistry) (*DebugServer, error) {
	return obs.ServeDebug(addr, r)
}

// DialLLRPWithMetrics is DialLLRP with protocol instrumentation.
func DialLLRPWithMetrics(addr string, m *LLRPClientMetrics) (*LLRPClient, error) {
	return llrp.DialWithMetrics(addr, 10*time.Second, m)
}

// DialLLRPTraced is DialLLRPWithMetrics with pipeline tracing: the
// client stamps StageRead on sampled reports as frames decode, so
// end-to-end traces price the read→ingest hop too. A nil tracer
// traces nothing.
func DialLLRPTraced(addr string, m *LLRPClientMetrics, tr *Tracer) (*LLRPClient, error) {
	//tagbreathe:allow ctxflow facade convenience dial with a fixed timeout; context callers use llrp.DialContextTraced
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return llrp.DialContextTraced(ctx, addr, m, tr)
}

// Baseline estimators for comparison studies.
type (
	// BaselineEstimator is the common interface of the comparators.
	BaselineEstimator = baseline.Estimator
	// RadarScenario simulates a CW Doppler radar over the same
	// subjects, the paper's motivating comparison.
	RadarScenario = baseline.RadarScenario
	// MultiModalEstimator fuses phase, RSSI, and Doppler (§IV-D.2's
	// proposed enhancement).
	MultiModalEstimator = multimodal.Estimator
)

// Respiratory analytics (the healthcare applications §I motivates).
type (
	// Breath is one segmented respiratory cycle.
	Breath = vitals.Breath
	// Apnea is a detected breathing pause.
	Apnea = vitals.Apnea
	// VitalsSummary aggregates rate, depth, I:E ratio, variability,
	// and apneas over a window.
	VitalsSummary = vitals.Summary
)

// SegmentBreaths slices an extracted breathing signal into individual
// respiratory cycles.
func SegmentBreaths(sig *BreathSignal) []Breath {
	return vitals.SegmentBreaths(sig)
}

// DetectApneas flags breathing pauses of at least minPauseSec seconds.
func DetectApneas(sig *BreathSignal, minPauseSec float64) []Apnea {
	return vitals.DetectApneas(sig, minPauseSec)
}

// SummarizeVitals computes the full respiratory summary for a signal.
func SummarizeVitals(sig *BreathSignal, minPauseSec float64) VitalsSummary {
	return vitals.Summarize(sig, minPauseSec)
}

// Tag commissioning (§IV-C: EPC overwrite or mapping-table fallback).
type (
	// TagRegistry resolves tag reports to logical identities.
	TagRegistry = commission.Registry
	// TagIdentity is a (user, tag) pair.
	TagIdentity = commission.Identity
	// TagWriter programs identities into tags with Gen2 word-write
	// semantics and verification.
	TagWriter = commission.Writer
	// WritableTag is a tag's EPC bank during commissioning.
	WritableTag = commission.WritableTag
)

// NewTagRegistry builds an empty commissioning registry.
func NewTagRegistry() *TagRegistry {
	return commission.NewRegistry()
}

// NewTagWriterWithRetries builds a commissioning station that writes
// tag identities with Gen2 word-write semantics, verifying and
// retrying up to maxRetries times per tag.
func NewTagWriterWithRetries(maxRetries int, rng *rand.Rand) (*TagWriter, error) {
	return commission.NewWriter(maxRetries, rng)
}

// ParseEPC96 parses a 24-hex-digit EPC string.
func ParseEPC96(s string) (EPC96, error) {
	return epc.ParseEPC96(s)
}

// Trace recording and replay.

// WriteTrace records a report stream as CSV for offline replay.
func WriteTrace(w io.Writer, reports []TagReport) error {
	return trace.WriteAll(w, reports)
}

// ReadTrace loads a recorded CSV trace.
func ReadTrace(r io.Reader) ([]TagReport, error) {
	return trace.ReadAll(r)
}
