package tagbreathe_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"tagbreathe"
)

// TestPublicAPIQuickstart exercises the documented quickstart path end
// to end through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	sc := tagbreathe.DefaultScenario()
	sc.Duration = time.Minute
	sc.Seed = 99
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	ests, err := tagbreathe.Estimate(res.Reports, tagbreathe.Config{Users: res.UserIDs})
	if err != nil {
		t.Fatal(err)
	}
	uid := res.UserIDs[0]
	est, ok := ests[uid]
	if !ok {
		t.Fatal("no estimate for the default user")
	}
	truth := res.TrueRateBPM[uid]
	if acc := tagbreathe.Accuracy(est.RateBPM, truth); acc < 0.9 {
		t.Errorf("quickstart accuracy %v", acc)
	}
}

func TestPublicAPIMonitorStream(t *testing.T) {
	sc := tagbreathe.DefaultScenario()
	sc.Duration = time.Minute
	sc.Seed = 100
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	updates, err := tagbreathe.MonitorStream(res.Reports, tagbreathe.MonitorConfig{
		Pipeline:    tagbreathe.Config{Users: res.UserIDs},
		UpdateEvery: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no streaming updates via the public API")
	}
}

func TestPublicAPIEPCPacking(t *testing.T) {
	e := tagbreathe.NewUserTagEPC(0xCAFE, 3)
	if e.UserID() != 0xCAFE || e.TagID() != 3 {
		t.Errorf("EPC round trip failed: %v", e)
	}
}

func TestPublicAPISideBySide(t *testing.T) {
	specs := tagbreathe.SideBySide(4, 4, 8, 12)
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	sc := tagbreathe.DefaultScenario()
	sc.Users = specs
	sc.Duration = 45 * time.Second
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UserIDs) != 4 {
		t.Errorf("user IDs = %d", len(res.UserIDs))
	}
}

func TestPublicAPIPosturesAndPatterns(t *testing.T) {
	sc := tagbreathe.DefaultScenario()
	sc.Duration = 45 * time.Second
	sc.Users[0].Posture = tagbreathe.Lying
	sc.Users[0].Pattern = tagbreathe.PatternNatural
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no reads for a lying natural breather")
	}
	truth := res.TrueRateBPM[res.UserIDs[0]]
	if truth <= 0 || math.IsNaN(truth) {
		t.Errorf("ground truth %v", truth)
	}
}

func TestPublicAPIVitals(t *testing.T) {
	sc := tagbreathe.DefaultScenario()
	sc.Duration = 90 * time.Second
	sc.Seed = 101
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	est, err := tagbreathe.EstimateUser(res.Reports, res.UserIDs[0], tagbreathe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	breaths := tagbreathe.SegmentBreaths(est.Signal)
	if len(breaths) < 8 {
		t.Errorf("segmented %d breaths over 90 s at 10 bpm", len(breaths))
	}
	if apneas := tagbreathe.DetectApneas(est.Signal, 8); len(apneas) != 0 {
		t.Errorf("false apneas: %+v", apneas)
	}
	s := tagbreathe.SummarizeVitals(est.Signal, 0)
	if math.Abs(s.MeanRateBPM-res.TrueRateBPM[res.UserIDs[0]]) > 1.5 {
		t.Errorf("vitals rate %v vs truth %v", s.MeanRateBPM, res.TrueRateBPM[res.UserIDs[0]])
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	sc := tagbreathe.DefaultScenario()
	sc.Duration = 15 * time.Second
	sc.Seed = 102
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tagbreathe.WriteTrace(&buf, res.Reports); err != nil {
		t.Fatal(err)
	}
	back, err := tagbreathe.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Reports) {
		t.Errorf("trace round trip: %d vs %d", len(back), len(res.Reports))
	}
}

func TestPublicAPITagRegistry(t *testing.T) {
	reg := tagbreathe.NewTagRegistry()
	reg.RegisterUser(7)
	e := tagbreathe.NewUserTagEPC(7, 2)
	id, ok := reg.Resolve(e)
	if !ok || id.UserID != 7 || id.TagID != 2 {
		t.Errorf("resolve = %+v, %v", id, ok)
	}
}

func TestPublicAPIMotionAndHeart(t *testing.T) {
	sc := tagbreathe.DefaultScenario()
	sc.Duration = 90 * time.Second
	sc.Seed = 103
	sc.Users[0].FidgetEverySec = 25
	sc.Users[0].HeartRateBPM = 70
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	est, err := tagbreathe.EstimateUser(res.Reports, res.UserIDs[0],
		tagbreathe.Config{MotionRejection: true})
	if err != nil {
		t.Fatal(err)
	}
	if est.RateBPM <= 0 {
		t.Error("no breathing rate with motion rejection on")
	}
	// The cardiac path runs (result quality depends on the noise
	// floor; only the API contract is asserted here).
	if _, err := tagbreathe.EstimateHeartRate(res.Reports, res.UserIDs[0], tagbreathe.Config{}); err != nil {
		t.Logf("heart estimate unavailable: %v (acceptable at commodity floor)", err)
	}
}
